(** Exhaustive optima for small instances; the denominators of every
    approximation-ratio experiment.

    All three enumerate non-empty copy sets over the storable nodes
    ([cs < infinity]) with branch-and-bound on storage cost. Guarded to
    [n <= 20] ({!opt_mst}, {!opt_restricted}) and [n <= 14]
    ({!opt_exact}, which runs a Dreyfus–Wagner table per subset). *)

(** [opt_mst inst ~x] minimizes the MST-policy cost {!Cost.total_mst}
    — the paper's own update strategy. Returns [(copies, cost)]. *)
val opt_mst : Instance.t -> x:int -> int list * float

(** [opt_exact inst ~x] minimizes the unrestricted cost
    {!Cost.total_exact} (writes pay exact Steiner trees) — the paper's
    [C^OPT]. *)
val opt_exact : Instance.t -> x:int -> int list * float

(** [opt_restricted inst ~x] minimizes the MST-policy cost over copy
    sets in which every copy serves at least [W] requests — the paper's
    [C^OPT_W]. *)
val opt_restricted : Instance.t -> x:int -> int list * float

(** [solve_mst inst] applies {!opt_mst} to every object. *)
val solve_mst : Instance.t -> Placement.t * float

(** [solve_exact inst] applies {!opt_exact} to every object. *)
val solve_exact : Instance.t -> Placement.t * float
