(** Human-readable placement audits: everything a user needs to trust
    (or debug) a placement — per-object cost breakdown, replication
    degrees, properness against the paper's constants, restrictedness,
    and per-node service loads. Used by [dmnet solve --audit]. *)

type object_report = {
  x : int;
  copies : int list;
  breakdown : Cost.breakdown;
  proper : bool;  (** (29, 2)-proper per {!Proper} *)
  violations : Proper.violation list;
  restricted : bool;  (** every copy serves >= W requests *)
  max_service_share : float;
      (** largest fraction of the object's requests served by one copy *)
}

type t = {
  objects : object_report list;
  total : Cost.breakdown;
  replicas : int;  (** total copies across objects *)
}

(** [build inst p] computes the audit (MST write policy). *)
val build : Instance.t -> Placement.t -> t

(** [render report] pretty-prints as text tables. *)
val render : t -> string
