open Dmn_paths

(* Nearest copy of v among [copies], ties to the smaller node id. *)
let nearest_copy m v copies =
  List.fold_left
    (fun (bu, bd) u ->
      let du = Metric.d m v u in
      if du < bd -. 1e-12 then (u, du) else (bu, bd))
    (-1, infinity) copies
  |> fst

let serving_counts inst ~x copies =
  let copies = List.sort_uniq compare copies in
  let m = Instance.metric inst in
  let tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace tbl c 0) copies;
  for v = 0 to Instance.n inst - 1 do
    let c = Instance.requests inst ~x v in
    if c > 0 then begin
      let s = nearest_copy m v copies in
      Hashtbl.replace tbl s (Hashtbl.find tbl s + c)
    end
  done;
  List.map (fun c -> (c, Hashtbl.find tbl c)) copies

let is_restricted inst ~x copies =
  let w = Instance.total_writes inst ~x in
  List.for_all (fun (_, served) -> served >= w) (serving_counts inst ~x copies)

let transform inst ~x copies =
  let copies = List.sort_uniq compare copies in
  let w = Instance.total_writes inst ~x in
  let m = Instance.metric inst in
  (* Tree distances along the MST of the original copy set, rooted at
     the first copy; the MST is fixed once, as in the lemma's proof. *)
  let tree_dist =
    match copies with
    | [] -> invalid_arg "Restricted.transform: empty copy set"
    | root :: _ ->
        let edges, _ = Dmn_span.Kruskal.mst_of_subset m copies in
        let adj = Hashtbl.create 16 in
        let push a b wgt =
          let l = Option.value ~default:[] (Hashtbl.find_opt adj a) in
          Hashtbl.replace adj a ((b, wgt) :: l)
        in
        List.iter
          (fun (a, b, wgt) ->
            push a b wgt;
            push b a wgt)
          edges;
        let dist = Hashtbl.create 16 in
        let rec dfs v d =
          if not (Hashtbl.mem dist v) then begin
            Hashtbl.replace dist v d;
            List.iter
              (fun (u, wgt) -> dfs u (d +. wgt))
              (Option.value ~default:[] (Hashtbl.find_opt adj v))
          end
        in
        dfs root 0.0;
        fun v -> Hashtbl.find dist v
  in
  let rec prune alive =
    let counts = serving_counts inst ~x alive in
    let under = List.filter (fun (_, served) -> served < w) counts in
    match under with
    | [] -> alive
    | _ when List.length alive <= 1 -> alive
    | _ ->
        let victim, _ =
          List.fold_left
            (fun (bv, bd) (c, _) ->
              let d = tree_dist c in
              if d > bd then (c, d) else (bv, bd))
            (-1, neg_infinity) under
        in
        prune (List.filter (fun c -> c <> victim) alive)
  in
  prune copies
