open Dmn_paths

type violation =
  | Too_far of { node : int; dist : float; bound : float }
  | Too_close of { u : int; v : int; dist : float; bound : float }

let pp_violation ppf = function
  | Too_far { node; dist; bound } ->
      Format.fprintf ppf "node %d: nearest copy at %.4g > k1 bound %.4g" node dist bound
  | Too_close { u; v; dist; bound } ->
      Format.fprintf ppf "copies %d,%d: distance %.4g < separation bound %.4g" u v dist bound

let violations inst ~x ~k1 ~k2 (radii : Radii.node_radii array) copies =
  ignore x;
  let m = Instance.metric inst in
  let copies = List.sort_uniq compare copies in
  let acc = ref [] in
  let dist = Cost.nearest_dists inst copies in
  for v = 0 to Instance.n inst - 1 do
    let bound = k1 *. Float.max radii.(v).Radii.rw radii.(v).Radii.rs in
    if dist.(v) > bound +. 1e-9 then acc := Too_far { node = v; dist = dist.(v); bound } :: !acc
  done;
  let arr = Array.of_list copies in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let u = arr.(i) and v = arr.(j) in
      let bound = 2.0 *. k2 *. Float.max radii.(u).Radii.rw radii.(v).Radii.rw in
      let d = Metric.d m u v in
      if d < bound -. 1e-9 then acc := Too_close { u; v; dist = d; bound } :: !acc
    done
  done;
  List.rev !acc

let is_proper inst ~x ~k1 ~k2 radii copies = violations inst ~x ~k1 ~k2 radii copies = []
