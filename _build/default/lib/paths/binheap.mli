(** Polymorphic binary min-heap keyed by float priority. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h prio v] inserts [v] with priority [prio]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop_min h] removes and returns the minimum [(prio, v)].
    @raise Not_found on an empty heap. *)
val pop_min : 'a t -> float * 'a

(** [peek_min h] returns the minimum without removal.
    @raise Not_found on an empty heap. *)
val peek_min : 'a t -> float * 'a
