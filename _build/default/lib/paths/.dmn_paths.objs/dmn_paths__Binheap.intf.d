lib/paths/binheap.mli:
