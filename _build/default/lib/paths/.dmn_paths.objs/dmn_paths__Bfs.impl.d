lib/paths/bfs.ml: Array Dmn_graph Queue Wgraph
