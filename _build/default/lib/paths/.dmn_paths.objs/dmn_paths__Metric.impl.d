lib/paths/metric.ml: Array Dijkstra Dmn_graph Dmn_prelude Float Floatx List Printf Wgraph
