lib/paths/dijkstra.mli: Dmn_graph Wgraph
