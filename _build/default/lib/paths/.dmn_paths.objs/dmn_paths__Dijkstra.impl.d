lib/paths/dijkstra.ml: Array Dmn_graph Idx_heap List Wgraph
