lib/paths/idx_heap.mli:
