lib/paths/idx_heap.ml: Array
