lib/paths/binheap.ml: Array
