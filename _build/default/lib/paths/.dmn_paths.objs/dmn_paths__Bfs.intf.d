lib/paths/bfs.mli: Dmn_graph Wgraph
