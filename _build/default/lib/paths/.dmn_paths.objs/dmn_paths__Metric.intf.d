lib/paths/metric.mli: Dmn_graph Wgraph
