open Dmn_graph

type result = { dist : float array; parent : int array; source : int array }

let multi g srcs =
  if srcs = [] then invalid_arg "Dijkstra.multi: no sources";
  let n = Wgraph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let source = Array.make n (-1) in
  let heap = Idx_heap.create n in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Dijkstra.multi: source out of range";
      dist.(s) <- 0.0;
      source.(s) <- s;
      Idx_heap.insert_or_decrease heap s 0.0)
    srcs;
  while not (Idx_heap.is_empty heap) do
    let v, d = Idx_heap.pop_min heap in
    (* Entries are only popped at their final distance with an indexed heap. *)
    Wgraph.iter_neighbors g v (fun u w ->
        let nd = d +. w in
        if nd < dist.(u) then begin
          dist.(u) <- nd;
          parent.(u) <- v;
          source.(u) <- source.(v);
          Idx_heap.insert_or_decrease heap u nd
        end)
  done;
  { dist; parent; source }

let run g src = multi g [ src ]

let path r v =
  if r.source.(v) < 0 then invalid_arg "Dijkstra.path: unreachable node";
  let rec go v acc = if r.parent.(v) < 0 then v :: acc else go r.parent.(v) (v :: acc) in
  go v []

let distance g u v = (run g u).dist.(v)
