(** Unweighted traversals. *)

open Dmn_graph

(** [hops g src] is the hop-count distance array; [-1] marks unreachable
    nodes. *)
val hops : Wgraph.t -> int -> int array

(** [eccentricity g v] is the maximum hop distance from [v]; the graph
    must be connected. *)
val eccentricity : Wgraph.t -> int -> int

(** [component g v] lists the nodes reachable from [v], in visit
    order. *)
val component : Wgraph.t -> int -> int list
