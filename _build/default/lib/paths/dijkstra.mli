(** Shortest paths over {!Dmn_graph.Wgraph} with non-negative weights. *)

open Dmn_graph

(** Result of a (multi-source) run: [dist.(v)] is the distance to the
    closest source ([infinity] when unreachable), [parent.(v)] the
    predecessor on such a shortest path ([-1] at sources and unreachable
    nodes), and [source.(v)] the source that serves [v] ([-1] when
    unreachable). *)
type result = { dist : float array; parent : int array; source : int array }

(** [run g src] computes single-source shortest paths from [src]. *)
val run : Wgraph.t -> int -> result

(** [multi g srcs] computes, for every node, the distance to the nearest
    of the given sources — exactly the "read request to nearest copy"
    primitive of the data management cost model.
    @raise Invalid_argument if [srcs] is empty. *)
val multi : Wgraph.t -> int list -> result

(** [path r v] reconstructs the node sequence from the serving source to
    [v], inclusive. @raise Invalid_argument if [v] is unreachable. *)
val path : result -> int -> int list

(** [distance g u v] is the shortest-path distance between two nodes. *)
val distance : Wgraph.t -> int -> int -> float
