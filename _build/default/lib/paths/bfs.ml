open Dmn_graph

let hops g src =
  let dist = Array.make (Wgraph.n g) (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Wgraph.iter_neighbors g v (fun u _ ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
  done;
  dist

let eccentricity g v =
  let dist = hops g v in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Bfs.eccentricity: disconnected graph" else max acc d)
    0 dist

let component g v =
  let dist = hops g v in
  let acc = ref [] in
  for u = Wgraph.n g - 1 downto 0 do
    if dist.(u) >= 0 then acc := u :: !acc
  done;
  !acc
