(** Greedy add / drop heuristics on the data-management objective
    itself (the classic file-assignment heuristics surveyed by
    Dowdy–Foster, evaluated against the paper's algorithm in E3/E5). *)

(** [add inst ~x] starts from the best single copy and adds the copy
    with the best cost reduction until no addition improves. *)
val add : Dmn_core.Instance.t -> x:int -> int list

(** [drop inst ~x] starts from full replication and drops the copy with
    the best cost reduction while improving (never dropping the last). *)
val drop : Dmn_core.Instance.t -> x:int -> int list
