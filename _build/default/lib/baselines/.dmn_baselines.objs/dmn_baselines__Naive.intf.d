lib/baselines/naive.mli: Dmn_core
