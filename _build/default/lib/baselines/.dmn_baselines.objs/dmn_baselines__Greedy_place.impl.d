lib/baselines/greedy_place.ml: Dmn_core Fun List Naive
