lib/baselines/naive.ml: Array Dmn_core Dmn_facility Fun List
