lib/baselines/local_place.mli: Dmn_core
