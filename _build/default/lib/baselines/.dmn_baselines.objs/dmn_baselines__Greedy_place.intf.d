lib/baselines/greedy_place.mli: Dmn_core
