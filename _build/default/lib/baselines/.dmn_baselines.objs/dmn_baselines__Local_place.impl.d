lib/baselines/local_place.ml: Dmn_core List Naive
