let storable inst =
  List.filter (fun v -> Dmn_core.Instance.cs inst v < infinity) (List.init (Dmn_core.Instance.n inst) Fun.id)

let full_replication inst ~x =
  ignore x;
  match storable inst with [] -> invalid_arg "Naive: no storable node" | l -> l

let best_single inst ~x =
  let best = ref [] and best_cost = ref infinity in
  List.iter
    (fun v ->
      let c = Dmn_core.Cost.total_mst inst ~x [ v ] in
      if c < !best_cost then begin
        best_cost := c;
        best := [ v ]
      end)
    (storable inst);
  !best

let read_only_reduction inst ~x =
  Dmn_facility.Local_search.solve (Dmn_core.Instance.related_flp inst ~x)

let solve strategy inst =
  Dmn_core.Placement.make (Array.init (Dmn_core.Instance.objects inst) (fun x -> strategy inst ~x))
