(** Naive placement strategies — the classic file-allocation heuristics
    the paper's cost model subsumes; used as comparison points in the
    benchmark suite.

    All per-object functions return a copy list evaluated with the MST
    write policy ({!Dmn_core.Cost.eval_mst}). *)

(** [full_replication inst ~x] stores a copy on every storable node. *)
val full_replication : Dmn_core.Instance.t -> x:int -> int list

(** [best_single inst ~x] is the 1-median: the single node minimizing
    the total cost (exactly optimal among single-copy placements). *)
val best_single : Dmn_core.Instance.t -> x:int -> int list

(** [read_only_reduction inst ~x] ignores write update traffic and
    solves the related facility location problem with local search —
    the Baev–Rajaraman-style read-only strategy; far from optimal under
    write-heavy loads (experiment E3). *)
val read_only_reduction : Dmn_core.Instance.t -> x:int -> int list

(** [solve strategy inst] applies a per-object strategy to every
    object. *)
val solve : (Dmn_core.Instance.t -> x:int -> int list) -> Dmn_core.Instance.t -> Dmn_core.Placement.t
