(** Local search directly on the data-management objective (add / drop /
    swap over copy sets, MST write policy). Stronger and much slower
    than the paper's algorithm; a quality yardstick on instances too
    large for exhaustive search. *)

(** [solve ?max_iters inst ~x] runs to a local optimum (default cap
    1000 accepted moves). *)
val solve : ?max_iters:int -> Dmn_core.Instance.t -> x:int -> int list
