module I = Dmn_core.Instance
module C = Dmn_core.Cost

let storable inst =
  List.filter (fun v -> I.cs inst v < infinity) (List.init (I.n inst) Fun.id)

let add inst ~x =
  let current = ref (Naive.best_single inst ~x) in
  let cost = ref (C.total_mst inst ~x !current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_v = ref (-1) and best_cost = ref !cost in
    List.iter
      (fun v ->
        if not (List.mem v !current) then begin
          let c = C.total_mst inst ~x (v :: !current) in
          if c < !best_cost then begin
            best_cost := c;
            best_v := v
          end
        end)
      (storable inst);
    if !best_v >= 0 then begin
      current := List.sort compare (!best_v :: !current);
      cost := !best_cost;
      improved := true
    end
  done;
  !current

let drop inst ~x =
  let current = ref (storable inst) in
  let cost = ref (C.total_mst inst ~x !current) in
  let improved = ref true in
  while !improved && List.length !current > 1 do
    improved := false;
    let best_v = ref (-1) and best_cost = ref !cost in
    List.iter
      (fun v ->
        let rest = List.filter (fun u -> u <> v) !current in
        let c = C.total_mst inst ~x rest in
        if c < !best_cost then begin
          best_cost := c;
          best_v := v
        end)
      !current;
    if !best_v >= 0 then begin
      current := List.filter (fun u -> u <> !best_v) !current;
      cost := !best_cost;
      improved := true
    end
  done;
  !current
