module I = Dmn_core.Instance
module C = Dmn_core.Cost

let solve ?(max_iters = 1000) inst ~x =
  let n = I.n inst in
  let ok v = I.cs inst v < infinity in
  let current = ref (Naive.best_single inst ~x) in
  let cost = ref (C.total_mst inst ~x !current) in
  let try_set candidate =
    match candidate with
    | [] -> false
    | _ ->
        let c = C.total_mst inst ~x candidate in
        if c < !cost -. 1e-12 then begin
          current := List.sort compare candidate;
          cost := c;
          true
        end
        else false
  in
  let improved = ref true in
  let iters = ref 0 in
  while !improved && !iters < max_iters do
    improved := false;
    incr iters;
    for v = 0 to n - 1 do
      if ok v && not (List.mem v !current) then
        if try_set (v :: !current) then improved := true
    done;
    List.iter
      (fun v -> if try_set (List.filter (fun u -> u <> v) !current) then improved := true)
      !current;
    List.iter
      (fun v ->
        for u = 0 to n - 1 do
          if ok u && (not (List.mem u !current)) && List.mem v !current then
            if try_set (u :: List.filter (fun w -> w <> v) !current) then improved := true
        done)
      !current
  done;
  !current
