examples/cdn_placement.ml: Dmn_baselines Dmn_core Dmn_prelude Dmn_workload List Printf Rng String Tbl
