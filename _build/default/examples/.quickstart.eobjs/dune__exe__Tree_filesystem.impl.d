examples/tree_filesystem.ml: Dmn_baselines Dmn_core Dmn_prelude Dmn_tree Dmn_workload Fun List Printf Rng String Tbl
