examples/quickstart.mli:
