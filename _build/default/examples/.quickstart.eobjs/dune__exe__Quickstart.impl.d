examples/quickstart.ml: Dmn_baselines Dmn_core Dmn_graph List Printf String
