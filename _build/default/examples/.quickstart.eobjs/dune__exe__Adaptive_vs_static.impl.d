examples/adaptive_vs_static.ml: Array Dmn_core Dmn_dynamic Dmn_graph Dmn_prelude Dmn_workload Format List Printf Rng
