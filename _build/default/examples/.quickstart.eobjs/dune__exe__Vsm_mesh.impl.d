examples/vsm_mesh.ml: Array Dmn_core Dmn_graph Dmn_prelude Dmn_workload List Printf Rng Tbl
