examples/tree_filesystem.mli:
