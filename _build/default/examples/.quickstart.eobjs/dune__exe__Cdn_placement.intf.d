examples/cdn_placement.mli:
