examples/adaptive_vs_static.mli:
