examples/vsm_mesh.mli:
