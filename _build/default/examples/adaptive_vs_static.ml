(* Static placement vs online adaptation (extension experiment).

   The paper computes static placements from known frequencies. This
   example replays two request streams against three strategies:

   - the paper's static placement (computed from the true frequencies),
   - a migrating single owner,
   - threshold-based caching (replicate hot readers, drop write-only
     replicas),

   once with a stationary stream drawn from the same frequencies the
   static algorithm saw, and once with drifting hotspots it never saw.

   Run with: dune exec examples/adaptive_vs_static.exe *)

open Dmn_prelude
module I = Dmn_core.Instance
module St = Dmn_dynamic.Stream
module Sg = Dmn_dynamic.Strategy
module Sim = Dmn_dynamic.Sim

let () =
  let rng = Rng.create 99 in
  let n = 24 in
  let g = Dmn_graph.Gen.random_geometric rng n 0.35 in
  let cs = Array.make n 2.5 in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.zipf rng ~objects:2 ~n ~requests:(10 * n) ~s:1.0 ~write_ratio:0.15
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  Printf.printf "== adaptive vs static on %d nodes, %d objects ==\n" n (I.objects inst);

  let static_placement = Dmn_core.Approx.solve inst in
  let strategies () =
    [
      Sg.static inst static_placement;
      Sg.migrating_owner inst;
      Sg.threshold_caching inst;
    ]
  in
  let show title events =
    Printf.printf "\n-- %s (%d events) --\n" title (List.length events);
    List.iter
      (fun strat ->
        let r = Sim.run inst strat events in
        Format.printf "%a@." Sim.pp r)
      (strategies ())
  in
  let volume = 8 * 10 * n * 2 in
  show "stationary stream (matches the planned frequencies)"
    (St.stationary (Rng.create 1) inst ~length:volume);
  show "drifting hotspots (frequencies the planner never saw)"
    (St.drifting (Rng.create 2) inst ~phases:8 ~phase_length:(volume / 8) ~write_fraction:0.15);
  print_newline ();
  print_endline
    "On the stationary stream the paper's static placement is hard to\n\
     beat. Under drift its replica set goes stale: serving cost jumps\n\
     while the adaptive strategies keep theirs flat and overtake it\n\
     once the drift lasts long enough to amortize their replication\n\
     transfers -- the trade static guarantees make for simplicity."
