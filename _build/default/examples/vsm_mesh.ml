(* Virtual shared memory scenario: cache lines shared by processors of a
   mesh-connected multiprocessor (paper introduction, and the mesh
   results of Maggs et al. that the cost model generalizes).

   Write-heavy sharing makes replication expensive: every write must
   update all copies. The example sweeps the write fraction and shows
   the replication degree chosen by the algorithm collapsing as writes
   increase -- the crossover the cost model is designed to capture.

   Run with: dune exec examples/vsm_mesh.exe *)

open Dmn_prelude
module I = Dmn_core.Instance
module C = Dmn_core.Cost
module A = Dmn_core.Approx

let () =
  let rows = 5 and cols = 5 in
  let g = Dmn_graph.Gen.grid rows cols in
  let n = rows * cols in
  Printf.printf "== VSM cache-line placement on a %dx%d mesh ==\n\n" rows cols;
  let tbl =
    Tbl.create [ "write fraction"; "replicas"; "storage"; "read"; "update"; "total" ]
  in
  List.iter
    (fun wf ->
      let rng = Rng.create 77 in
      let { Dmn_workload.Freq.fr; fw } =
        Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(8 * n) ~write_fraction:wf
      in
      let cs = Array.make n 3.0 in
      let inst = I.of_graph g ~cs ~fr ~fw in
      let copies = A.place_object inst ~x:0 in
      let b = C.eval_mst inst ~x:0 copies in
      Tbl.add_row tbl
        [
          Printf.sprintf "%.2f" wf;
          string_of_int (List.length copies);
          Tbl.fl2 b.C.storage;
          Tbl.fl2 b.C.read;
          Tbl.fl2 b.C.update;
          Tbl.fl2 (C.total b);
        ])
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ];
  Tbl.print tbl;
  print_newline ();
  print_endline
    "As the write share grows, updates dominate and the algorithm\n\
     concentrates the line on fewer processors (single-writer lines end\n\
     up with one copy near the writer)."
