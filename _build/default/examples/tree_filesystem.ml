(* Distributed file system scenario: files shared by workstations whose
   network is a tree (the Ethernet-segment hierarchies of the paper's
   introduction). On trees the library computes truly optimal
   placements (paper Section 3) -- this example runs the tree DP,
   verifies it against the paper's approximation algorithm, and shows
   the per-file replica sets.

   Run with: dune exec examples/tree_filesystem.exe *)

open Dmn_prelude
module I = Dmn_core.Instance
module C = Dmn_core.Cost
module A = Dmn_core.Approx
module T = Dmn_tree.Tree_solver

let () =
  let rng = Rng.create 1973 in
  let inst = Dmn_workload.Scenario.distributed_fs rng ~n:24 ~objects:5 in
  Printf.printf "== file placement on a %d-workstation tree ==\n\n" (I.n inst);

  (* Optimal: the Section-3 dynamic program (exact Steiner updates). *)
  let placement, opt_cost = T.solve inst in
  Printf.printf "tree DP optimum total cost: %.2f\n\n" opt_cost;

  let tbl = Tbl.create [ "file"; "readers"; "writer vol"; "replicas"; "replica nodes" ] in
  for x = 0 to I.objects inst - 1 do
    let copies = Dmn_core.Placement.copies placement ~x in
    let readers =
      List.length (List.filter (fun v -> I.reads inst ~x v > 0) (List.init (I.n inst) Fun.id))
    in
    Tbl.add_row tbl
      [
        string_of_int x;
        string_of_int readers;
        string_of_int (I.total_writes inst ~x);
        string_of_int (List.length copies);
        String.concat "," (List.map string_of_int copies);
      ]
  done;
  Tbl.print tbl;

  (* The general-network approximation on the same instance, evaluated
     in its own (MST-update) policy; on trees MST over copies along
     tree paths equals the spanned subtree, so costs are comparable. *)
  let approx = A.solve inst in
  let approx_cost = C.total (C.placement_mst inst approx) in
  Printf.printf "\ngeneral-network approximation on the same tree: %.2f (ratio %.3f)\n"
    approx_cost (approx_cost /. opt_cost);

  (* And the naive single-copy policy for scale. *)
  let single =
    C.total (C.placement_mst inst (Dmn_baselines.Naive.solve Dmn_baselines.Naive.best_single inst))
  in
  Printf.printf "best single copy per file:                      %.2f (ratio %.3f)\n" single
    (single /. opt_cost)
