(* Content-provider scenario from the paper's introduction: pages in the
   WWW served over a commercial network where both bandwidth and memory
   are rented. The provider must decide how many replicas of each page
   to buy and where.

   An Internet-like clustered topology (cheap dense links inside
   clusters, expensive backbone links between them) carries a
   Zipf-popular read workload with occasional page updates.

   Run with: dune exec examples/cdn_placement.exe *)

open Dmn_prelude
module I = Dmn_core.Instance
module C = Dmn_core.Cost
module A = Dmn_core.Approx

let () =
  let rng = Rng.create 2001 in
  let inst = Dmn_workload.Scenario.web_cdn rng ~clusters:4 ~per_cluster:8 ~objects:6 in
  let n = I.n inst in
  Printf.printf "== CDN page placement: %d nodes, %d pages ==\n\n" n (I.objects inst);

  let placement = A.solve inst in
  let b = C.placement_mst inst placement in
  Printf.printf "paper's algorithm: storage %.1f + read %.1f + update %.1f = %.1f\n"
    b.C.storage b.C.read b.C.update (C.total b);

  let tbl = Tbl.create [ "page"; "reads"; "writes"; "replicas"; "cost"; "replica nodes" ] in
  for x = 0 to I.objects inst - 1 do
    let copies = Dmn_core.Placement.copies placement ~x in
    Tbl.add_row tbl
      [
        string_of_int x;
        string_of_int (I.total_reads inst ~x);
        string_of_int (I.total_writes inst ~x);
        string_of_int (List.length copies);
        Tbl.fl2 (C.total_mst inst ~x copies);
        String.concat "," (List.map string_of_int copies);
      ]
  done;
  Tbl.print tbl;

  (* Contrast with the two commercial extremes: a single central copy
     (minimal memory rental) and full replication (minimal bandwidth
     rental). *)
  let total strat =
    C.total (C.placement_mst inst (Dmn_baselines.Naive.solve strat inst))
  in
  Printf.printf "\nsingle central copy per page: %.1f\n"
    (total Dmn_baselines.Naive.best_single);
  Printf.printf "full replication per page:    %.1f\n"
    (total Dmn_baselines.Naive.full_replication);
  Printf.printf "paper's algorithm:            %.1f\n" (C.total b)
