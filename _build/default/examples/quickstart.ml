(* Quickstart: build a small network, describe a workload, run the
   paper's approximation algorithm and compare against the exhaustive
   optimum.

   Run with: dune exec examples/quickstart.exe *)

module I = Dmn_core.Instance
module C = Dmn_core.Cost
module A = Dmn_core.Approx

let () =
  (* A 9-node network: two triangles bridged by a long link. Edge
     weights are the per-object transmission fees. *)
  let g =
    Dmn_graph.Wgraph.create 9
      [
        (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0); (2, 3, 4.0);
        (3, 4, 1.0); (4, 5, 1.0); (5, 3, 1.0); (5, 6, 2.0);
        (6, 7, 1.0); (7, 8, 1.0); (8, 6, 1.0);
      ]
  in
  (* Per-node storage fees: cheap in the middle cluster. *)
  let cs = [| 6.0; 6.0; 6.0; 2.0; 2.0; 2.0; 6.0; 6.0; 6.0 |] in
  (* One shared object: heavy readers in the first triangle, a writer in
     the last one. *)
  let fr = [| [| 5; 4; 3; 0; 0; 0; 1; 1; 0 |] |] in
  let fw = [| [| 0; 0; 0; 0; 0; 0; 0; 2; 0 |] |] in
  let inst = I.of_graph g ~cs ~fr ~fw in

  print_endline "== quickstart: static data management in a 9-node network ==\n";

  (* The paper's three-phase approximation algorithm. *)
  let copies = A.place_object inst ~x:0 in
  let b = C.eval_mst inst ~x:0 copies in
  Printf.printf "approximation placed copies on: %s\n"
    (String.concat ", " (List.map string_of_int copies));
  Printf.printf "  storage %.2f + read %.2f + update %.2f = total %.2f\n\n" b.C.storage
    b.C.read b.C.update (C.total b);

  (* Exhaustive optimum (feasible at this size). *)
  let opt_copies, opt_cost = Dmn_core.Exact.opt_exact inst ~x:0 in
  Printf.printf "exhaustive optimum uses: %s (cost %.2f)\n"
    (String.concat ", " (List.map string_of_int opt_copies))
    opt_cost;
  Printf.printf "approximation ratio on this instance: %.3f\n\n"
    (C.total b /. opt_cost);

  (* Simple baselines for contrast. *)
  let show name copies =
    Printf.printf "%-18s cost %8.2f  (copies: %s)\n" name
      (C.total_mst inst ~x:0 copies)
      (String.concat "," (List.map string_of_int copies))
  in
  show "best single copy" (Dmn_baselines.Naive.best_single inst ~x:0);
  show "full replication" (Dmn_baselines.Naive.full_replication inst ~x:0);
  show "greedy add" (Dmn_baselines.Greedy_place.add inst ~x:0)
