open Dmn_prelude
open Dmn_graph
module R = Dmn_tree.Rtree

let of_graph_path () =
  let rt = R.of_graph (Gen.path 5) ~root:2 in
  Alcotest.(check int) "root" 2 rt.R.root;
  Alcotest.(check int) "root parent" (-1) rt.R.parent.(2);
  Alcotest.(check int) "parent of 1" 2 rt.R.parent.(1);
  Alcotest.(check int) "parent of 0" 1 rt.R.parent.(0);
  Alcotest.(check int) "height" 2 (R.height rt)

let rejects_non_tree () =
  Alcotest.check_raises "cycle" (Invalid_argument "Rtree.of_graph: not a tree") (fun () ->
      ignore (R.of_graph (Gen.ring 4) ~root:0))

let post_order_children_first () =
  let rng = Rng.create 101 in
  for _ = 1 to 25 do
    let n = 1 + Rng.int rng 30 in
    let rt = R.of_graph (Gen.random_tree rng n) ~root:(Rng.int rng n) in
    let seen = Array.make n false in
    Array.iter
      (fun v ->
        Array.iter
          (fun c -> Alcotest.(check bool) "child before parent" true seen.(c))
          rt.R.children.(v);
        seen.(v) <- true)
      rt.R.post_order;
    Alcotest.(check bool) "all visited" true (Array.for_all Fun.id seen)
  done

let subtree_sizes_consistent () =
  let rng = Rng.create 102 in
  for _ = 1 to 25 do
    let n = 1 + Rng.int rng 30 in
    let rt = R.of_graph (Gen.random_tree rng n) ~root:0 in
    let sizes = R.subtree_size rt in
    Alcotest.(check int) "root size" n sizes.(0);
    for v = 0 to n - 1 do
      let child_sum = Array.fold_left (fun acc c -> acc + sizes.(c)) 0 rt.R.children.(v) in
      Alcotest.(check int) "size = 1 + children" (child_sum + 1) sizes.(v)
    done
  done

let dist_to_root_matches_dijkstra () =
  let rng = Rng.create 103 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 25 in
    let g = Gen.random_tree rng n in
    let root = Rng.int rng n in
    let rt = R.of_graph g ~root in
    let dist = R.dist_to_root rt in
    let d = (Dmn_paths.Dijkstra.run g root).Dmn_paths.Dijkstra.dist in
    Array.iteri (fun v x -> Util.check_cost "tree dist == dijkstra" d.(v) x) dist
  done

let in_subtree_correct () =
  let rt = R.of_graph (Gen.path 5) ~root:0 in
  Alcotest.(check bool) "4 in T_2" true (R.in_subtree rt ~v:2 4);
  Alcotest.(check bool) "1 not in T_2" false (R.in_subtree rt ~v:2 1);
  Alcotest.(check bool) "self" true (R.in_subtree rt ~v:3 3)

let binarize_depth_bound () =
  (* depth grows by at most a log(deg) factor *)
  let rng = Rng.create 104 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 60 in
    let g = Gen.random_tree rng n in
    let rt = R.of_graph g ~root:0 in
    let b = Dmn_tree.Binarize.run rt in
    let deg = Dmn_graph.Wgraph.max_degree g in
    let lg = int_of_float (ceil (Float.log (float_of_int (max 2 deg)) /. Float.log 2.0)) in
    let bound = (R.height rt + 1) * (lg + 1) + 1 in
    Alcotest.(check bool) "binarized depth bounded" true
      (R.height b.Dmn_tree.Binarize.tree <= bound)
  done

let binarize_star () =
  let g = Gen.star 17 in
  let rt = R.of_graph g ~root:0 in
  let b = Dmn_tree.Binarize.run rt in
  Alcotest.(check bool) "binary" true (Dmn_tree.Binarize.max_children b <= 2);
  (* 16 leaves need 15-ish dummies in a balanced gadget; all leaves at
     weighted distance 1 from the root *)
  let dist = R.dist_to_root b.Dmn_tree.Binarize.tree in
  for v = 1 to 16 do
    Util.check_float "leaf distance preserved" 1.0 dist.(b.Dmn_tree.Binarize.repr.(v))
  done

let suite =
  [
    Alcotest.test_case "of_graph path" `Quick of_graph_path;
    Alcotest.test_case "rejects non-tree" `Quick rejects_non_tree;
    Alcotest.test_case "post order" `Quick post_order_children_first;
    Alcotest.test_case "subtree sizes" `Quick subtree_sizes_consistent;
    Alcotest.test_case "dist to root" `Quick dist_to_root_matches_dijkstra;
    Alcotest.test_case "in_subtree" `Quick in_subtree_correct;
    Alcotest.test_case "binarize depth bound" `Quick binarize_depth_bound;
    Alcotest.test_case "binarize star" `Quick binarize_star;
  ]
