open Dmn_prelude
module I = Dmn_core.Instance
module C = Dmn_core.Cost
module N = Dmn_baselines.Naive
module G = Dmn_baselines.Greedy_place
module L = Dmn_baselines.Local_place

let strategies =
  [
    ("full", N.full_replication);
    ("single", N.best_single);
    ("read-only-reduction", N.read_only_reduction);
    ("greedy-add", fun inst ~x -> G.add inst ~x);
    ("greedy-drop", fun inst ~x -> G.drop inst ~x);
    ("local", fun inst ~x -> L.solve inst ~x);
  ]

let all_return_valid () =
  let rng = Rng.create 71 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 10 in
    let inst = Util.random_graph_instance rng n in
    List.iter
      (fun (name, strat) ->
        let copies = strat inst ~x:0 in
        if copies = [] then Alcotest.failf "%s returned empty" name;
        List.iter
          (fun c -> if c < 0 || c >= n then Alcotest.failf "%s out of range" name)
          copies)
      strategies
  done

let best_single_is_min_over_singletons () =
  let rng = Rng.create 72 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 10 in
    let inst = Util.random_graph_instance rng n in
    let best = N.best_single inst ~x:0 in
    let c = C.total_mst inst ~x:0 best in
    for v = 0 to n - 1 do
      Util.check_leq "singleton optimality" c (C.total_mst inst ~x:0 [ v ] +. 1e-9)
    done
  done

let greedy_add_at_least_single () =
  let rng = Rng.create 73 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 10 in
    let inst = Util.random_graph_instance rng n in
    let single = C.total_mst inst ~x:0 (N.best_single inst ~x:0) in
    let added = C.total_mst inst ~x:0 (G.add inst ~x:0) in
    Util.check_leq "greedy add never worse than single" added (single +. 1e-9)
  done

let greedy_drop_at_least_full () =
  let rng = Rng.create 74 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 10 in
    let inst = Util.random_graph_instance rng n in
    let full = C.total_mst inst ~x:0 (N.full_replication inst ~x:0) in
    let dropped = C.total_mst inst ~x:0 (G.drop inst ~x:0) in
    Util.check_leq "greedy drop never worse than full" dropped (full +. 1e-9)
  done

let local_beats_greedy_start () =
  let rng = Rng.create 75 in
  for _ = 1 to 8 do
    let n = 2 + Rng.int rng 8 in
    let inst = Util.random_graph_instance rng n in
    let single = C.total_mst inst ~x:0 (N.best_single inst ~x:0) in
    let local = C.total_mst inst ~x:0 (L.solve inst ~x:0) in
    Util.check_leq "local <= its start" local (single +. 1e-9)
  done

let local_near_optimal_small () =
  let rng = Rng.create 76 in
  for _ = 1 to 6 do
    let n = 2 + Rng.int rng 6 in
    let inst = Util.random_graph_instance rng n in
    let local = C.total_mst inst ~x:0 (L.solve inst ~x:0) in
    let _, opt = Dmn_core.Exact.opt_mst inst ~x:0 in
    Util.check_leq "local within 2x of mst optimum" local ((2.0 *. opt) +. 1e-6)
  done

let read_only_reduction_good_without_writes () =
  (* with no writes the reduction is just the FLP and should be close to
     the exact optimum *)
  let rng = Rng.create 77 in
  for _ = 1 to 6 do
    let n = 2 + Rng.int rng 6 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
    let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 10.0) in
    let fr = [| Array.init n (fun _ -> Rng.int rng 5) |] in
    let fw = [| Array.make n 0 |] in
    let inst = I.of_graph g ~cs ~fr ~fw in
    if I.total_requests inst ~x:0 > 0 then begin
      let c = C.total_mst inst ~x:0 (N.read_only_reduction inst ~x:0) in
      let _, opt = Dmn_core.Exact.opt_mst inst ~x:0 in
      Util.check_leq "read-only reduction within 6x" c ((6.0 *. opt) +. 1e-6)
    end
  done

let solve_builds_placement () =
  let rng = Rng.create 78 in
  let inst = Util.random_graph_instance ~objects:3 rng 6 in
  let p = N.solve N.best_single inst in
  Alcotest.(check int) "objects" 3 (Dmn_core.Placement.objects p)

let suite =
  [
    Alcotest.test_case "strategies valid" `Quick all_return_valid;
    Alcotest.test_case "best single is singleton optimum" `Quick best_single_is_min_over_singletons;
    Alcotest.test_case "greedy add improves on single" `Quick greedy_add_at_least_single;
    Alcotest.test_case "greedy drop improves on full" `Quick greedy_drop_at_least_full;
    Alcotest.test_case "local search improves" `Quick local_beats_greedy_start;
    Alcotest.test_case "local near optimal" `Quick local_near_optimal_small;
    Alcotest.test_case "read-only reduction quality" `Quick read_only_reduction_good_without_writes;
    Alcotest.test_case "solve placement" `Quick solve_builds_placement;
  ]
