test/test_report.ml: Alcotest Array Dmn_core Dmn_graph Dmn_prelude Fun List Rng String Util
