test/test_paths.ml: Alcotest Array Bfs Binheap Dijkstra Dmn_graph Dmn_paths Dmn_prelude Float Gen Idx_heap List Metric QCheck Rng Util Wgraph
