test/test_edge_cases.ml: Alcotest Array Dmn_baselines Dmn_core Dmn_dynamic Dmn_graph Dmn_prelude Dmn_tree Dmn_workload Float List Rng Util
