test/test_loadmodel.ml: Alcotest Array Dmn_core Dmn_graph Dmn_loadmodel Dmn_prelude Dmn_tree Dmn_workload Fun List Printf Rng Util
