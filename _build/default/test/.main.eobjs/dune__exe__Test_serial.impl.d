test/test_serial.ml: Alcotest Dmn_core Dmn_paths Dmn_prelude Filename Fun Rng Sys Util
