test/test_envelope.ml: Alcotest Dmn_prelude Dmn_tree Float Floatx List Printf QCheck String Util
