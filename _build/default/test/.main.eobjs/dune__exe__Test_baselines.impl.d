test/test_baselines.ml: Alcotest Array Dmn_baselines Dmn_core Dmn_graph Dmn_prelude List Rng Util
