test/test_capacitated.ml: Alcotest Array Dmn_cap Dmn_core Dmn_graph Dmn_prelude List Rng Util
