test/main.mli:
