test/test_core.ml: Alcotest Array Dmn_core Dmn_facility Dmn_graph Dmn_paths Dmn_prelude Format Gen List QCheck Rng String Util
