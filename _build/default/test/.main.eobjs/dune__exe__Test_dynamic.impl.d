test/test_dynamic.ml: Alcotest Array Dmn_baselines Dmn_core Dmn_dynamic Dmn_graph Dmn_prelude Dmn_workload List Rng Util
