test/test_facility.ml: Alcotest Array Dmn_facility Dmn_graph Dmn_paths Dmn_prelude Exact Float Flp Gen Greedy Jain_vazirani List Local_search Metric Mettu_plaxton Printf QCheck Rng Util
