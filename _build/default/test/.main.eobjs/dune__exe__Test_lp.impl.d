test/test_lp.ml: Alcotest Array Dmn_core Dmn_facility Dmn_graph Dmn_lp Dmn_paths Dmn_prelude List Rng Util
