test/test_span.ml: Alcotest Array Dmn_dsu Dmn_graph Dmn_paths Dmn_prelude Dmn_span Gen Hashtbl Kruskal List Metric Prim QCheck Rng Steiner Util Wgraph
