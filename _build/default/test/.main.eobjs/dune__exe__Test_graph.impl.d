test/test_graph.ml: Alcotest Dmn_graph Dmn_prelude Dot Gen List QCheck Rng String Util Wgraph
