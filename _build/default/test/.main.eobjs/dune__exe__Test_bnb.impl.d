test/test_bnb.ml: Alcotest Array Dmn_baselines Dmn_core Dmn_graph Dmn_prelude Dmn_workload Printf Rng Util
