test/test_workload.ml: Alcotest Array Dmn_core Dmn_graph Dmn_prelude Dmn_workload Freq QCheck Rng Scenario Util
