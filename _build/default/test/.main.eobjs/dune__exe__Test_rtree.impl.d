test/test_rtree.ml: Alcotest Array Dmn_graph Dmn_paths Dmn_prelude Dmn_tree Float Fun Gen Rng Util
