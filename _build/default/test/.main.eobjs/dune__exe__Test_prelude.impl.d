test/test_prelude.ml: Alcotest Array Dmn_prelude Floatx Gen List QCheck Rng Stats String Tbl Util
