test/test_tree.ml: Alcotest Array Dmn_core Dmn_graph Dmn_prelude Dmn_tree Floatx List Printf QCheck Rng Util
