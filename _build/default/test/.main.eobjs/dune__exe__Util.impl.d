test/util.ml: Alcotest Array Dmn_core Dmn_graph Dmn_prelude Floatx Gen QCheck_alcotest Rng
