(* Direct tests of the lower-envelope structure underlying the tree DP
   export tuples. *)

open Dmn_prelude
module E = Dmn_tree.Envelope

let line c r info = { E.c; r; info }

let single_line () =
  let env = E.build [ line 3.0 2.0 "a" ] in
  Alcotest.(check int) "one piece" 1 (E.size env);
  Util.check_float "value" 7.0 (E.value env 2.0)

let two_lines_crossover () =
  let env = E.build [ line 0.0 4.0 "steep"; line 6.0 1.0 "flat" ] in
  Alcotest.(check int) "two pieces" 2 (E.size env);
  Alcotest.(check string) "steep first" "steep" (E.at env 0.0).E.info;
  Alcotest.(check string) "flat later" "flat" (E.at env 10.0).E.info;
  (* crossover at 2.0 *)
  Alcotest.(check string) "boundary belongs to flat" "flat" (E.at env 2.0).E.info;
  Util.check_float "continuous at boundary" 8.0 (E.value env 2.0)

let dominated_removed () =
  let env = E.build [ line 1.0 1.0 "good"; line 2.0 2.0 "dominated"; line 1.0 1.0 "dup" ] in
  Alcotest.(check int) "one piece" 1 (E.size env);
  (* "good" and "dup" are the same line; either label may win the tie *)
  let winner = (E.at env 5.0).E.info in
  Alcotest.(check bool) "winner" true (winner = "good" || winner = "dup")

let middle_line_skipped () =
  (* the classic case where the middle line never wins *)
  let env = E.build [ line 8.119 6.0 "a"; line 13.078 4.0 "b"; line 20.697 0.0 "c" ] in
  Alcotest.(check int) "two pieces" 2 (E.size env);
  Alcotest.(check string) "a first" "a" (E.at env 0.0).E.info;
  Alcotest.(check string) "c last" "c" (E.at env 3.0).E.info

let infinite_lines_dropped () =
  let env = E.build [ line infinity 0.0 "inf"; line 1.0 1.0 "fin" ] in
  Alcotest.(check int) "one piece" 1 (E.size env);
  Alcotest.check_raises "all infinite rejected"
    (Invalid_argument "Envelope.build: no finite line") (fun () ->
      ignore (E.build [ line infinity 0.0 "inf" ]))

let qcheck_envelope_is_minimum =
  let gen =
    QCheck.make
      ~print:(fun lines ->
        String.concat ";" (List.map (fun (c, r) -> Printf.sprintf "(%.3f,%.3f)" c r) lines))
      QCheck.Gen.(
        list_size (int_range 1 15)
          (pair (float_bound_exclusive 100.0) (float_bound_exclusive 10.0)))
  in
  QCheck.Test.make ~name:"envelope value == min over all lines" ~count:300 gen (fun lines ->
      let env = E.build (List.map (fun (c, r) -> line c r ()) lines) in
      List.for_all
        (fun d ->
          let expected = List.fold_left (fun acc (c, r) -> Float.min acc (c +. (r *. d))) infinity lines in
          Floatx.approx ~tol:1e-6 expected (E.value env d))
        [ 0.0; 0.1; 0.5; 1.0; 3.0; 10.0; 100.0; 1e4 ])

let qcheck_pieces_sorted =
  QCheck.Test.make ~name:"envelope breakpoints ascending from 0" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (pair (float_bound_exclusive 50.0) (float_bound_exclusive 5.0)))
    (fun lines ->
      let env = E.build (List.map (fun (c, r) -> line c r ()) lines) in
      let bps = E.breakpoints env in
      List.hd bps = 0.0
      && fst (List.fold_left (fun (ok, prev) b -> (ok && b >= prev, b)) (true, -1.0) bps))

let suite =
  [
    Alcotest.test_case "single line" `Quick single_line;
    Alcotest.test_case "two lines crossover" `Quick two_lines_crossover;
    Alcotest.test_case "dominated removed" `Quick dominated_removed;
    Alcotest.test_case "middle line skipped" `Quick middle_line_skipped;
    Alcotest.test_case "infinite lines" `Quick infinite_lines_dropped;
    Util.qtest qcheck_envelope_is_minimum;
    Util.qtest qcheck_pieces_sorted;
  ]
