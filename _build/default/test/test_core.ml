open Dmn_prelude
open Dmn_graph
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module C = Dmn_core.Cost
module R = Dmn_core.Radii
module Pr = Dmn_core.Proper
module A = Dmn_core.Approx
module Re = Dmn_core.Restricted
module E = Dmn_core.Exact

let instance_accessors () =
  let g = Gen.path 3 in
  let inst =
    I.of_graph g ~cs:[| 1.0; 2.0; 3.0 |] ~fr:[| [| 1; 0; 2 |] |] ~fw:[| [| 0; 3; 0 |] |]
  in
  Alcotest.(check int) "n" 3 (I.n inst);
  Alcotest.(check int) "objects" 1 (I.objects inst);
  Alcotest.(check int) "reads" 2 (I.reads inst ~x:0 2);
  Alcotest.(check int) "writes" 3 (I.writes inst ~x:0 1);
  Alcotest.(check int) "requests" 3 (I.requests inst ~x:0 1);
  Alcotest.(check int) "W" 3 (I.total_writes inst ~x:0);
  Alcotest.(check int) "R total" 6 (I.total_requests inst ~x:0);
  Alcotest.(check bool) "not read only" false (I.read_only inst ~x:0)

let instance_validation () =
  let g = Gen.path 2 in
  Alcotest.check_raises "bad count" (Invalid_argument "Instance: negative count") (fun () ->
      ignore (I.of_graph g ~cs:[| 1.0; 1.0 |] ~fr:[| [| -1; 0 |] |] ~fw:[| [| 0; 0 |] |]))

let related_flp_recasts_writes () =
  let g = Gen.path 2 in
  let inst = I.of_graph g ~cs:[| 1.0; 2.0 |] ~fr:[| [| 1; 0 |] |] ~fw:[| [| 2; 3 |] |] in
  let flp = I.related_flp inst ~x:0 in
  Util.check_float "demand = fr + fw" 3.0 flp.Dmn_facility.Flp.demand.(0);
  Util.check_float "demand node 1" 3.0 flp.Dmn_facility.Flp.demand.(1);
  Util.check_float "opening = cs" 2.0 flp.Dmn_facility.Flp.opening.(1)

let placement_basics () =
  let p = P.make [| [ 2; 0; 2 ] |] in
  Alcotest.(check (list int)) "dedup sorted" [ 0; 2 ] (P.copies p ~x:0);
  Alcotest.(check bool) "holds" true (P.holds p ~x:0 2);
  Alcotest.(check int) "count" 2 (P.copy_count p ~x:0);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Placement.make: empty copy set")
    (fun () -> ignore (P.make [| [] |]))

let cost_hand_computed () =
  (* path 0-1-2 with unit edges; copies {0}; reads at 2 (x2), writes at 1 (x1) *)
  let g = Gen.path 3 in
  let inst = I.of_graph g ~cs:[| 5.0; 5.0; 5.0 |] ~fr:[| [| 0; 0; 2 |] |] ~fw:[| [| 0; 1; 0 |] |] in
  let b = C.eval_mst inst ~x:0 [ 0 ] in
  Util.check_float "storage" 5.0 b.C.storage;
  (* reads: 2 * dist(2,0)=2 -> 4; write h->s leg: 1 * dist(1,0)=1 *)
  Util.check_float "read (incl. write legs)" 5.0 b.C.read;
  (* single copy: MST weight 0 *)
  Util.check_float "update" 0.0 b.C.update;
  let b2 = C.eval_mst inst ~x:0 [ 0; 2 ] in
  Util.check_float "storage 2" 10.0 b2.C.storage;
  (* reads now free; write leg 1*1=1 *)
  Util.check_float "read 2" 1.0 b2.C.read;
  (* W=1 times MST({0,2}) = 2 *)
  Util.check_float "update 2" 2.0 b2.C.update;
  (* exact model: write at 1 pays Steiner({1} u {0,2}) = 2 *)
  let be = C.eval_exact inst ~x:0 [ 0; 2 ] in
  Util.check_float "exact read" 0.0 be.C.read;
  Util.check_float "exact update" 2.0 be.C.update

let mst_policy_dominates_exact () =
  (* Claim 2 pointwise: eval_mst <= 2 * eval_exact for the write part,
     and total_exact <= total_mst always. *)
  let rng = Rng.create 51 in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 8 in
    let inst = Util.random_graph_instance rng n in
    let k = 1 + Rng.int rng n in
    let copies = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
    let bm = C.eval_mst inst ~x:0 copies in
    let be = C.eval_exact inst ~x:0 copies in
    Util.check_leq "exact <= mst policy" (C.total be) (C.total bm +. 1e-9);
    Util.check_leq "mst update <= 2x exact update + write legs"
      bm.C.update
      ((2.0 *. (be.C.update +. 1e-9)) +. 1e-6)
  done

let nearest_dists_graph_vs_metric () =
  let rng = Rng.create 52 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 15 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let cs = Array.make n 1.0 in
    let fr = [| Array.make n 1 |] and fw = [| Array.make n 0 |] in
    let inst_g = I.of_graph g ~cs ~fr ~fw in
    let inst_m = I.of_metric (I.metric inst_g) ~cs ~fr ~fw in
    let k = 1 + Rng.int rng n in
    let copies = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
    let dg = C.nearest_dists inst_g copies and dm = C.nearest_dists inst_m copies in
    Array.iteri (fun v d -> Util.check_cost "dijkstra == metric scan" dm.(v) d) dg
  done

let radii_defining_inequalities () =
  let rng = Rng.create 53 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 12 in
    let inst = Util.random_graph_instance rng n in
    let r = R.compute inst ~x:0 in
    match R.check inst ~x:0 r with
    | Ok () -> ()
    | Error e -> Alcotest.failf "radii check: %s" e
  done

let radii_hand_example () =
  (* path 0-1-2, one request on each node, cs = 1.5 at node 0:
     S(1)=0, S(2)=1, S(3)=3 => zs = min z with S(z) > 1.5 = 3,
     rw with W=0 is 0. *)
  let g = Gen.path 3 in
  let inst = I.of_graph g ~cs:[| 1.5; 9.0; 9.0 |] ~fr:[| [| 1; 1; 1 |] |] ~fw:[| [| 0; 0; 0 |] |] in
  let r = R.compute inst ~x:0 in
  Alcotest.(check int) "zs node 0" 3 r.(0).R.zs;
  Util.check_float "rw read-only" 0.0 r.(0).R.rw;
  Util.check_float "avg dist d(0,2)" 0.5 (R.avg_dist inst ~x:0 0 2);
  Util.check_float "S(0,3)" 3.0 (R.prefix_sum inst ~x:0 0 3);
  Alcotest.(check bool) "rs in [d(2), d(3))" true (r.(0).R.rs >= 0.5 && r.(0).R.rs < 1.0)

let radii_degenerate_cases () =
  let g = Gen.path 2 in
  (* free storage *)
  let i1 = I.of_graph g ~cs:[| 0.0; 1.0 |] ~fr:[| [| 1; 1 |] |] ~fw:[| [| 0; 0 |] |] in
  let r1 = R.compute i1 ~x:0 in
  Util.check_float "cs=0 -> rs=0" 0.0 r1.(0).R.rs;
  (* no requests at all *)
  let i2 = I.of_graph g ~cs:[| 1.0; 1.0 |] ~fr:[| [| 0; 0 |] |] ~fw:[| [| 0; 0 |] |] in
  let r2 = R.compute i2 ~x:0 in
  Alcotest.(check bool) "no requests -> rs inf" true (r2.(0).R.rs = infinity);
  (* forbidden storage *)
  let i3 = I.of_graph g ~cs:[| infinity; 1.0 |] ~fr:[| [| 1; 1 |] |] ~fw:[| [| 0; 0 |] |] in
  let r3 = R.compute i3 ~x:0 in
  Alcotest.(check bool) "cs=inf -> rs inf" true (r3.(0).R.rs = infinity)

let approx_produces_proper_placement () =
  (* Lemma 8: the output is (29, 2)-proper. *)
  let rng = Rng.create 54 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 14 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies = A.place_object inst ~x:0 in
      Alcotest.(check bool) "non-empty" true (copies <> []);
      let radii = R.compute inst ~x:0 in
      let viols = Pr.violations inst ~x:0 ~k1:29.0 ~k2:2.0 radii copies in
      if viols <> [] then
        Alcotest.failf "placement not proper: %s"
          (String.concat "; "
             (List.map (fun v -> Format.asprintf "%a" Pr.pp_violation v) viols))
    end
  done

let approx_constant_factor_vs_opt () =
  (* Theorem 7: constant approximation. The empirical constant on these
     small instances is far below the worst-case bound; assert a
     generous 60x against the exact (Steiner-update) optimum. *)
  let rng = Rng.create 55 in
  for _ = 1 to 12 do
    let n = 3 + Rng.int rng 7 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies = A.place_object inst ~x:0 in
      let c = C.total_mst inst ~x:0 copies in
      let _, opt = E.opt_exact inst ~x:0 in
      if opt > 0.0 then Util.check_leq "constant factor" c (60.0 *. opt)
    end
  done

let approx_all_solvers_work () =
  let rng = Rng.create 56 in
  let inst = Util.random_graph_instance rng 10 in
  List.iter
    (fun solver ->
      let config = { A.default_config with A.solver } in
      let copies = A.place_object ~config inst ~x:0 in
      Alcotest.(check bool)
        (A.solver_name solver ^ " non-empty")
        true (copies <> []))
    [ A.Local_search; A.Jain_vazirani; A.Mettu_plaxton; A.Greedy ]

let phase2_enforces_storage_radius () =
  let rng = Rng.create 57 in
  for _ = 1 to 15 do
    let n = 3 + Rng.int rng 12 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let radii = R.compute inst ~x:0 in
      let config = A.default_config in
      let copies = A.phase1 ~config inst ~x:0 in
      let copies2 = A.phase2 ~config inst ~x:0 radii copies in
      let dist = C.nearest_dists inst copies2 in
      for v = 0 to n - 1 do
        Util.check_leq "phase-2 invariant" dist.(v) ((5.0 *. radii.(v).R.rs) +. 1e-9)
      done
    end
  done

let phase3_separation () =
  let rng = Rng.create 58 in
  for _ = 1 to 15 do
    let n = 3 + Rng.int rng 12 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let radii = R.compute inst ~x:0 in
      let config = A.default_config in
      let copies =
        A.phase2 ~config inst ~x:0 radii (A.phase1 ~config inst ~x:0)
      in
      let survivors = A.phase3 ~config inst radii copies in
      Alcotest.(check bool) "non-empty" true (survivors <> []);
      let m = I.metric inst in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if u <> v then
                Alcotest.(check bool) "separation" true
                  (Dmn_paths.Metric.d m u v > (4.0 *. radii.(u).R.rw) -. 1e-9))
            survivors)
        survivors
    end
  done

let restricted_transform_properties () =
  let rng = Rng.create 59 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 10 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let k = 1 + Rng.int rng n in
      let copies = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
      let restricted = Re.transform inst ~x:0 copies in
      Alcotest.(check bool) "non-empty" true (restricted <> []);
      Alcotest.(check bool) "subset" true
        (List.for_all (fun c -> List.mem c copies) restricted);
      Alcotest.(check bool) "is restricted" true (Re.is_restricted inst ~x:0 restricted)
    end
  done

let lemma1_factor_four () =
  (* C^OPT_W <= 4 C^OPT on exhaustively solvable instances. *)
  let rng = Rng.create 60 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 6 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, opt = E.opt_exact inst ~x:0 in
      let _, opt_w = E.opt_restricted inst ~x:0 in
      Util.check_leq "Lemma 1" opt_w ((4.0 *. opt) +. 1e-6)
    end
  done

let claim2_mst_within_2x () =
  (* min over copy sets of the MST-policy cost is within 2x of the
     Steiner-policy optimum (Claim 2 consequence). *)
  let rng = Rng.create 61 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 6 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, opt_mst = E.opt_mst inst ~x:0 in
      let _, opt = E.opt_exact inst ~x:0 in
      Util.check_leq "mst-policy optimum within 2x" opt_mst ((2.0 *. opt) +. 1e-6);
      Util.check_leq "exact <= mst optimum" opt ((1.0 *. opt_mst) +. 1e-6)
    end
  done

let exact_agrees_with_placement_eval () =
  let rng = Rng.create 62 in
  for _ = 1 to 8 do
    let n = 2 + Rng.int rng 6 in
    let inst = Util.random_graph_instance rng n in
    let copies, cost = E.opt_mst inst ~x:0 in
    Util.check_cost "enumerated cost matches eval" (C.total_mst inst ~x:0 copies) cost
  done

let multi_object_independence () =
  (* objects are placed independently: solving a 2-object instance must
     equal solving each object alone *)
  let rng = Rng.create 63 in
  let inst = Util.random_graph_instance ~objects:2 rng 8 in
  let p = A.solve inst in
  for x = 0 to 1 do
    let single = I.restrict_object inst ~x in
    let copies = A.place_object single ~x:0 in
    Alcotest.(check (list int)) "per-object independence" copies (P.copies p ~x)
  done

let scale_object_uniform_invariance () =
  (* scaling storage and transmission by the same factor rescales costs
     linearly and leaves optimal placements unchanged *)
  let rng = Rng.create 64 in
  for _ = 1 to 8 do
    let n = 2 + Rng.int rng 6 in
    let inst = Util.random_graph_instance rng n in
    let scaled = I.scale_object inst ~x:0 ~storage:3.0 ~transmission:3.0 in
    let copies, opt = E.opt_mst inst ~x:0 in
    let copies', opt' = E.opt_mst scaled ~x:0 in
    Alcotest.(check (list int)) "same optimum" copies copies';
    Util.check_cost "cost scales linearly" (3.0 *. opt) opt'
  done

let scale_object_changes_balance () =
  (* making storage relatively expensive must not increase the optimal
     replica count *)
  let rng = Rng.create 65 in
  for _ = 1 to 8 do
    let n = 3 + Rng.int rng 5 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let cheap = I.scale_object inst ~x:0 ~storage:0.01 ~transmission:1.0 in
      let pricey = I.scale_object inst ~x:0 ~storage:100.0 ~transmission:1.0 in
      let c1, _ = E.opt_mst cheap ~x:0 in
      let c2, _ = E.opt_mst pricey ~x:0 in
      Alcotest.(check bool) "replicas shrink with storage price" true
        (List.length c2 <= List.length c1)
    end
  done

let scale_object_validation () =
  let inst = Util.random_graph_instance (Rng.create 66) 4 in
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Instance.scale_object: factors must be positive") (fun () ->
      ignore (I.scale_object inst ~x:0 ~storage:0.0 ~transmission:1.0))

let qcheck_proper =
  QCheck.Test.make ~name:"approx output is (29,2)-proper" ~count:40
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Util.random_graph_instance rng n in
      I.total_requests inst ~x:0 = 0
      ||
      let copies = A.place_object inst ~x:0 in
      let radii = R.compute inst ~x:0 in
      Pr.is_proper inst ~x:0 ~k1:29.0 ~k2:2.0 radii copies)

let qcheck_avg_dist_monotone =
  QCheck.Test.make ~name:"d(v,z) nondecreasing in z; S(z) superadditive" ~count:60
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Util.random_graph_instance rng n in
      let total = I.total_requests inst ~x:0 in
      total = 0
      ||
      let ok = ref true in
      for v = 0 to I.n inst - 1 do
        let prev_avg = ref 0.0 and prev_s = ref 0.0 in
        for z = 1 to total do
          let avg = R.avg_dist inst ~x:0 v z and sum = R.prefix_sum inst ~x:0 v z in
          if avg < !prev_avg -. 1e-9 then ok := false;
          if sum < !prev_s -. 1e-9 then ok := false;
          if not (Dmn_prelude.Floatx.approx ~tol:1e-6 sum (avg *. float_of_int z)) then ok := false;
          prev_avg := avg;
          prev_s := sum
        done
      done;
      !ok)

let qcheck_radii =
  QCheck.Test.make ~name:"radii satisfy defining inequalities" ~count:60
    QCheck.(pair small_int (int_range 2 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Util.random_graph_instance rng n in
      match R.check inst ~x:0 (R.compute inst ~x:0) with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "instance accessors" `Quick instance_accessors;
    Alcotest.test_case "instance validation" `Quick instance_validation;
    Alcotest.test_case "related FLP" `Quick related_flp_recasts_writes;
    Alcotest.test_case "placement basics" `Quick placement_basics;
    Alcotest.test_case "cost hand example" `Quick cost_hand_computed;
    Alcotest.test_case "exact <= mst policy" `Quick mst_policy_dominates_exact;
    Alcotest.test_case "nearest dists graph == metric" `Quick nearest_dists_graph_vs_metric;
    Alcotest.test_case "radii inequalities" `Quick radii_defining_inequalities;
    Alcotest.test_case "radii hand example" `Quick radii_hand_example;
    Alcotest.test_case "radii degenerate cases" `Quick radii_degenerate_cases;
    Alcotest.test_case "approx is proper (Lemma 8)" `Quick approx_produces_proper_placement;
    Alcotest.test_case "approx constant factor (Thm 7)" `Quick approx_constant_factor_vs_opt;
    Alcotest.test_case "all phase-1 solvers" `Quick approx_all_solvers_work;
    Alcotest.test_case "phase 2 invariant" `Quick phase2_enforces_storage_radius;
    Alcotest.test_case "phase 3 separation" `Quick phase3_separation;
    Alcotest.test_case "restricted transform" `Quick restricted_transform_properties;
    Alcotest.test_case "Lemma 1 factor 4" `Quick lemma1_factor_four;
    Alcotest.test_case "Claim 2 factor 2" `Quick claim2_mst_within_2x;
    Alcotest.test_case "exact matches eval" `Quick exact_agrees_with_placement_eval;
    Alcotest.test_case "multi-object independence" `Quick multi_object_independence;
    Alcotest.test_case "scale_object uniform invariance" `Quick scale_object_uniform_invariance;
    Alcotest.test_case "scale_object balance shift" `Quick scale_object_changes_balance;
    Alcotest.test_case "scale_object validation" `Quick scale_object_validation;
    Util.qtest qcheck_proper;
    Util.qtest qcheck_avg_dist_monotone;
    Util.qtest qcheck_radii;
  ]
