open Dmn_prelude
module I = Dmn_core.Instance
module B = Dmn_core.Bnb
module E = Dmn_core.Exact

let matches_enumeration () =
  let rng = Rng.create 121 in
  for trial = 1 to 30 do
    let n = 2 + Rng.int rng 11 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies_b, cost_b = B.opt_mst inst ~x:0 in
      let copies_e, cost_e = E.opt_mst inst ~x:0 in
      Util.check_cost (Printf.sprintf "trial %d cost" trial) cost_e cost_b;
      (* optima may be non-unique; check the returned set achieves it *)
      Util.check_cost "bnb set achieves its cost" (Dmn_core.Cost.total_mst inst ~x:0 copies_b) cost_b;
      ignore copies_e
    end
  done

let matches_on_trees_and_grids () =
  let rng = Rng.create 122 in
  for _ = 1 to 10 do
    let n = 4 + Rng.int rng 8 in
    let inst = Util.random_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, cost_b = B.opt_mst inst ~x:0 in
      let _, cost_e = E.opt_mst inst ~x:0 in
      Util.check_cost "tree" cost_e cost_b
    end
  done

let scales_past_enumeration () =
  (* n = 24 would be 16M subsets for the enumerator; BnB should solve it
     quickly *)
  let rng = Rng.create 123 in
  let n = 24 in
  let g = Dmn_graph.Gen.random_geometric rng n 0.35 in
  let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 15.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.25
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let copies, cost = B.opt_mst ~node_limit:2_000_000 inst ~x:0 in
  Alcotest.(check bool) "non-empty" true (copies <> []);
  Util.check_cost "self-consistent" (Dmn_core.Cost.total_mst inst ~x:0 copies) cost;
  (* the optimum can only undercut the heuristics *)
  let greedy = Dmn_core.Cost.total_mst inst ~x:0 (Dmn_baselines.Greedy_place.add inst ~x:0) in
  Util.check_leq "opt <= greedy" cost (greedy +. 1e-9);
  let explored, _ = B.stats () in
  Alcotest.(check bool) "pruning effective" true (explored < 2_000_000)

let node_limit_enforced () =
  let rng = Rng.create 124 in
  let inst = Util.random_graph_instance rng 14 in
  match B.opt_mst ~node_limit:3 inst ~x:0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "node limit ignored"

let suite =
  [
    Alcotest.test_case "bnb == enumeration" `Quick matches_enumeration;
    Alcotest.test_case "bnb on trees" `Quick matches_on_trees_and_grids;
    Alcotest.test_case "bnb scales to n=24" `Quick scales_past_enumeration;
    Alcotest.test_case "node limit" `Quick node_limit_enforced;
  ]
