(* Tree DP validation: the Section-3 algorithms must equal the
   exhaustive tree optimum, read-only and general. *)

open Dmn_prelude
module I = Dmn_core.Instance
module T = Dmn_tree.Tree_solver
module TE = Dmn_tree.Tree_exact
module TD = Dmn_tree.Tdata

let read_only_instance rng n =
  let g = Dmn_graph.Gen.random_tree rng n in
  let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 25.0) in
  let fr = [| Array.init n (fun _ -> Rng.int rng 5) |] in
  let fw = [| Array.make n 0 |] in
  I.of_graph g ~cs ~fr ~fw

let dp_matches_bruteforce_ro () =
  let rng = Rng.create 42 in
  for trial = 1 to 120 do
    let n = 2 + Rng.int rng 9 in
    let inst = read_only_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies, cost = T.place_object inst ~x:0 in
      let _, opt = TE.opt inst ~x:0 ~root:0 in
      Util.check_cost (Printf.sprintf "trial %d (n=%d) read-only dp vs brute force" trial n) opt cost;
      Util.check_cost
        (Printf.sprintf "trial %d reported cost matches placement" trial)
        (TE.cost inst ~x:0 ~root:0 copies)
        cost
    end
  done

let dp_matches_bruteforce_rw () =
  let rng = Rng.create 7 in
  for trial = 1 to 120 do
    let n = 2 + Rng.int rng 9 in
    let inst = Util.random_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies, cost = T.place_object inst ~x:0 in
      let _, opt = TE.opt inst ~x:0 ~root:0 in
      Util.check_cost (Printf.sprintf "trial %d (n=%d) general dp vs brute force" trial n) opt cost;
      Util.check_cost
        (Printf.sprintf "trial %d reported cost matches placement" trial)
        (TE.cost inst ~x:0 ~root:0 copies)
        cost
    end
  done

let dp_root_independent () =
  let rng = Rng.create 99 in
  for _ = 1 to 40 do
    let n = 3 + Rng.int rng 8 in
    let inst = Util.random_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, c0 = T.place_object ~root:0 inst ~x:0 in
      let root = Rng.int rng n in
      let _, cr = T.place_object ~root inst ~x:0 in
      Util.check_cost "optimal cost must not depend on the chosen root" c0 cr
    end
  done

let ro_equals_rw_on_read_only () =
  let rng = Rng.create 4242 in
  for _ = 1 to 60 do
    let n = 2 + Rng.int rng 12 in
    let inst = read_only_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let td = TD.of_instance inst ~x:0 ~root:0 in
      let _, c_ro = Dmn_tree.Ro_dp.solve td in
      let _, c_rw = Dmn_tree.Rw_dp.solve td in
      Util.check_cost "Ro_dp and Rw_dp agree on read-only input" c_ro c_rw
    end
  done

let exact_cost_matches_dw_model () =
  (* Tree_exact's per-edge write cost must equal the Dreyfus-Wagner
     Steiner evaluation of Dmn_core.Cost.eval_exact. *)
  let rng = Rng.create 11 in
  for _ = 1 to 40 do
    let n = 2 + Rng.int rng 8 in
    let inst = Util.random_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let k = 1 + Rng.int rng n in
      let copies =
        List.sort_uniq compare (List.init k (fun _ -> Rng.int rng n))
      in
      let via_edges = TE.cost inst ~x:0 ~root:0 copies in
      let via_dw = Dmn_core.Cost.total_exact inst ~x:0 copies in
      Util.check_cost "tree edge-decomposition vs Steiner write cost" via_dw via_edges
    end
  done

let binarize_properties () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 40 in
    let g = Dmn_graph.Gen.random_tree rng n in
    let rt = Dmn_tree.Rtree.of_graph g ~root:0 in
    let b = Dmn_tree.Binarize.run rt in
    Alcotest.(check bool) "binary" true (Dmn_tree.Binarize.max_children b <= 2);
    (* distances between real nodes preserved *)
    let bt = b.Dmn_tree.Binarize.tree in
    let dist_bin = Dmn_tree.Rtree.dist_to_root bt in
    let dist_orig = Dmn_tree.Rtree.dist_to_root rt in
    for v = 0 to n - 1 do
      Util.check_cost "root distance preserved under binarization" dist_orig.(v)
        dist_bin.(b.Dmn_tree.Binarize.repr.(v))
    done
  done

let sufficient_set_bounds () =
  (* Lemma 12 / Section 3.2: |imports| <= |Tv|, exports <= |Tv| + 1,
     general case <= 3|Tv| + 2 in total. *)
  let rng = Rng.create 31 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 12 in
    let inst = Util.random_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let td = TD.of_instance inst ~x:0 ~root:0 in
      let bt = td.TD.bin.Dmn_tree.Binarize.tree in
      let sizes = Dmn_tree.Rtree.subtree_size bt in
      let counts = Dmn_tree.Rw_dp.tuple_counts td in
      Array.iteri
        (fun v (i0, i1, e) ->
          let bound = (3 * sizes.(v)) + 2 in
          if i0 + i1 + e > bound then
            Alcotest.failf "sufficient set too large at node %d: %d+%d+%d > %d" v i0 i1 e bound)
        counts
    end
  done

let literal_transcription_agrees () =
  (* the Claim-15/16 transcription must agree with both the
     envelope-based DP and the brute force on read-only objects *)
  let rng = Rng.create 777 in
  for trial = 1 to 150 do
    let n = 2 + Rng.int rng 12 in
    let inst = read_only_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let td = TD.of_instance inst ~x:0 ~root:0 in
      let literal = Dmn_tree.Ro_dp_literal.solve_cost td in
      let _, envelope = Dmn_tree.Ro_dp.solve td in
      Util.check_cost (Printf.sprintf "trial %d literal == envelope" trial) envelope literal
    end
  done

let literal_tuple_bounds () =
  (* Lemma 12: imports <= |Tv|, exports <= |Tv| + 1 per subtree *)
  let rng = Rng.create 778 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 15 in
    let inst = read_only_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let td = TD.of_instance inst ~x:0 ~root:0 in
      let bt = td.TD.bin.Dmn_tree.Binarize.tree in
      let sizes = Dmn_tree.Rtree.subtree_size bt in
      Array.iteri
        (fun v (imports, exports) ->
          if imports > sizes.(v) then
            Alcotest.failf "node %d: %d imports > |Tv| = %d" v imports sizes.(v);
          if exports > sizes.(v) + 1 then
            Alcotest.failf "node %d: %d exports > |Tv|+1 = %d" v exports (sizes.(v) + 1))
        (Dmn_tree.Ro_dp_literal.tuple_counts td)
    end
  done

(* qcheck differential property: encode a random tree instance as a
   seed-and-size pair, compare DP vs brute force *)
let qcheck_dp_equals_bruteforce =
  QCheck.Test.make ~name:"tree DP == brute force (qcheck)" ~count:150
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Util.random_tree_instance rng n in
      I.total_requests inst ~x:0 = 0
      ||
      let _, dp = T.place_object inst ~x:0 in
      let _, opt = TE.opt inst ~x:0 ~root:0 in
      Floatx.approx ~tol:1e-6 dp opt)

let qcheck_dp_cost_realizable =
  QCheck.Test.make ~name:"tree DP returns a set achieving its cost" ~count:150
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Util.random_tree_instance rng n in
      I.total_requests inst ~x:0 = 0
      ||
      let copies, cost = T.place_object inst ~x:0 in
      Floatx.approx ~tol:1e-6 (TE.cost inst ~x:0 ~root:0 copies) cost)

let suite =
  [
    Alcotest.test_case "read-only DP == brute force" `Quick dp_matches_bruteforce_ro;
    Alcotest.test_case "general DP == brute force" `Quick dp_matches_bruteforce_rw;
    Alcotest.test_case "root independence" `Quick dp_root_independent;
    Alcotest.test_case "Ro_dp == Rw_dp on read-only" `Quick ro_equals_rw_on_read_only;
    Alcotest.test_case "edge decomposition == Steiner model" `Quick exact_cost_matches_dw_model;
    Alcotest.test_case "binarization preserves distances" `Quick binarize_properties;
    Alcotest.test_case "sufficient set size bounds" `Quick sufficient_set_bounds;
    Alcotest.test_case "literal Claim-15/16 transcription" `Quick literal_transcription_agrees;
    Alcotest.test_case "Lemma 12 tuple bounds (literal)" `Quick literal_tuple_bounds;
    Util.qtest qcheck_dp_equals_bruteforce;
    Util.qtest qcheck_dp_cost_realizable;
  ]
