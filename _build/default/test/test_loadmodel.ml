open Dmn_prelude
module I = Dmn_core.Instance
module TL = Dmn_loadmodel.Tree_load
module CN = Dmn_loadmodel.Complete_net

(* build a tree instance with zero storage cost (total-load model) *)
let load_tree_instance rng n =
  let g = Dmn_graph.Gen.random_tree rng n in
  let cs = Array.make n 0.0 in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.3
  in
  I.of_graph g ~cs ~fr ~fw

let lower_bound_is_a_bound () =
  let rng = Rng.create 111 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 12 in
    let inst = load_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, lb = TL.per_edge_lower_bound inst ~x:0 ~root:0 in
      let k = 1 + Rng.int rng n in
      let copies = Array.to_list (Rng.sample rng (Array.init n Fun.id) k) in
      let _, load = TL.edge_loads inst ~x:0 ~root:0 copies in
      Util.check_leq "per-edge LB below any placement" lb (load +. 1e-6)
    end
  done

let edge_loads_sum_matches_cost () =
  (* with cs = 0 the summed weighted edge loads equal the exact total
     cost of the placement *)
  let rng = Rng.create 112 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 10 in
    let inst = load_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let k = 1 + Rng.int rng n in
      let copies = List.sort_uniq compare (List.init k (fun _ -> Rng.int rng n)) in
      let _, load = TL.edge_loads inst ~x:0 ~root:0 copies in
      let cost = Dmn_tree.Tree_exact.cost inst ~x:0 ~root:0 copies in
      Util.check_cost "edge loads sum to total cost" cost load
    end
  done

let optimum_attains_per_edge_minimum () =
  (* the simultaneous-optimality theorem: on trees with cs = 0 the
     optimal total load equals the sum of per-edge minima *)
  let rng = Rng.create 113 in
  for trial = 1 to 40 do
    let n = 2 + Rng.int rng 12 in
    let inst = load_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, lb = TL.per_edge_lower_bound inst ~x:0 ~root:0 in
      let _, opt = Dmn_tree.Tree_solver.place_object inst ~x:0 in
      Util.check_cost (Printf.sprintf "trial %d: optimum == per-edge LB" trial) lb opt
    end
  done

let optimum_attains_every_edge_minimum () =
  (* stronger form: the DP's optimal placement meets the minimum on each
     individual edge, not just in total *)
  let rng = Rng.create 114 in
  for trial = 1 to 40 do
    let n = 2 + Rng.int rng 12 in
    let inst = load_tree_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies, _ = Dmn_tree.Tree_solver.place_object inst ~x:0 in
      let bounds, _ = TL.per_edge_lower_bound inst ~x:0 ~root:0 in
      let loads, _ = TL.edge_loads inst ~x:0 ~root:0 copies in
      List.iter2
        (fun (v1, lb) (v2, load) ->
          Alcotest.(check int) "same edge" v1 v2;
          Util.check_cost (Printf.sprintf "trial %d edge %d load == min" trial v1) lb load)
        bounds loads
    end
  done

let complete_net_matches_bruteforce () =
  let rng = Rng.create 115 in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 8 in
    let g = Dmn_graph.Gen.complete n in
    let cs = Array.make n 0.0 in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(4 * n) ~write_fraction:0.3
    in
    let inst = I.of_graph g ~cs ~fr ~fw in
    if I.total_requests inst ~x:0 > 0 then begin
      let copies, cost = CN.solve inst ~x:0 in
      Util.check_cost "closed form self-consistent" (CN.cost inst ~x:0 copies) cost;
      (* brute force over all copy sets in the same model *)
      let best = ref infinity in
      for mask = 1 to (1 lsl n) - 1 do
        let s = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
        let c = CN.cost inst ~x:0 s in
        if c < !best then best := c
      done;
      Util.check_cost "closed form optimal" !best cost;
      (* the uniform complete model agrees with the general exact model
         on K_n with unit weights and zero storage *)
      let exact = Dmn_core.Cost.total_exact inst ~x:0 copies in
      Util.check_cost "model agreement on K_n" exact cost
    end
  done

let complete_net_write_pressure () =
  (* replicas shrink as writes grow *)
  let n = 10 in
  let g = Dmn_graph.Gen.complete n in
  let cs = Array.make n 0.0 in
  let fr = [| Array.make n 10 |] in
  let prev = ref max_int in
  List.iter
    (fun wv ->
      let fw = [| Array.make n wv |] in
      let inst = I.of_graph g ~cs ~fr ~fw in
      let copies, _ = CN.solve inst ~x:0 in
      let k = List.length copies in
      Alcotest.(check bool) "monotone" true (k <= !prev);
      prev := k)
    [ 0; 1; 5; 20 ];
  Alcotest.(check bool) "collapses to single copy" true (!prev = 1)

let net_load_matches_cost_model () =
  (* the routed per-edge loads must sum exactly to the communication
     part of the MST-policy cost *)
  let rng = Rng.create 116 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 15 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let k = 1 + Rng.int rng n in
      let copies = Array.to_list (Rng.sample rng (Array.init n Fun.id) k) in
      let profile = Dmn_loadmodel.Net_load.of_copies inst ~x:0 copies in
      let b = Dmn_core.Cost.eval_mst inst ~x:0 copies in
      Util.check_cost "weighted load == read + update"
        (b.Dmn_core.Cost.read +. b.Dmn_core.Cost.update)
        profile.Dmn_loadmodel.Net_load.total_weighted;
      Util.check_leq "max <= total" profile.Dmn_loadmodel.Net_load.max_weighted
        (profile.Dmn_loadmodel.Net_load.total_weighted +. 1e-9);
      (* every edge is reported exactly once *)
      Alcotest.(check int) "all edges reported"
        (match I.graph inst with Some g -> Dmn_graph.Wgraph.m g | None -> -1)
        (List.length profile.Dmn_loadmodel.Net_load.load)
    end
  done

let net_load_placement_sums_objects () =
  let rng = Rng.create 117 in
  let inst = Util.random_graph_instance ~objects:3 rng 10 in
  let p =
    Dmn_core.Placement.make
      (Array.init 3 (fun x -> [ x mod I.n inst; (x + 3) mod I.n inst ]))
  in
  let whole = Dmn_loadmodel.Net_load.of_placement inst p in
  let parts =
    List.init 3 (fun x -> Dmn_loadmodel.Net_load.of_copies inst ~x (Dmn_core.Placement.copies p ~x))
  in
  let sum =
    List.fold_left (fun acc pr -> acc +. pr.Dmn_loadmodel.Net_load.total_weighted) 0.0 parts
  in
  Util.check_cost "placement profile = sum of objects" sum
    whole.Dmn_loadmodel.Net_load.total_weighted

let ring_instance rng n =
  let g = Dmn_graph.Gen.ring n in
  let g = Dmn_graph.Wgraph.map_weights (fun _ _ _ -> Rng.float_in rng 0.5 5.0) g in
  let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 10.0) in
  let fr = [| Array.init n (fun _ -> Rng.int rng 5) |] in
  let fw = [| Array.make n 0 |] in
  I.of_graph g ~cs ~fr ~fw

let ring_opt_matches_bruteforce () =
  let rng = Rng.create 118 in
  for trial = 1 to 30 do
    let n = 3 + Rng.int rng 9 in
    let inst = ring_instance rng n in
    let copies, cost = Dmn_loadmodel.Ring_ro.opt inst ~x:0 in
    (* read-only: the MST-policy optimum is the pure read+storage optimum *)
    let _, opt = Dmn_core.Exact.opt_mst inst ~x:0 in
    Util.check_cost (Printf.sprintf "trial %d ring DP == brute force" trial) opt cost;
    Util.check_cost "self-consistent"
      (Dmn_core.Cost.total_mst inst ~x:0 copies)
      cost
  done

let ring_rejects_writes_and_non_rings () =
  let rng = Rng.create 119 in
  let inst = Util.random_tree_instance rng 6 in
  (match Dmn_loadmodel.Ring_ro.opt inst ~x:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tree accepted as ring");
  let g = Dmn_graph.Gen.ring 5 in
  let inst2 =
    I.of_graph g ~cs:(Array.make 5 1.0) ~fr:[| Array.make 5 1 |] ~fw:[| Array.make 5 1 |]
  in
  match Dmn_loadmodel.Ring_ro.opt inst2 ~x:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "writes accepted"

let suite =
  [
    Alcotest.test_case "per-edge LB is a bound" `Quick lower_bound_is_a_bound;
    Alcotest.test_case "edge loads == total cost (cs=0)" `Quick edge_loads_sum_matches_cost;
    Alcotest.test_case "optimum attains per-edge minima" `Quick optimum_attains_per_edge_minimum;
    Alcotest.test_case "optimum attains each edge minimum" `Quick optimum_attains_every_edge_minimum;
    Alcotest.test_case "complete net closed form" `Quick complete_net_matches_bruteforce;
    Alcotest.test_case "complete net write pressure" `Quick complete_net_write_pressure;
    Alcotest.test_case "net load == cost model" `Quick net_load_matches_cost_model;
    Alcotest.test_case "net load sums objects" `Quick net_load_placement_sums_objects;
    Alcotest.test_case "ring DP == brute force" `Quick ring_opt_matches_bruteforce;
    Alcotest.test_case "ring DP input validation" `Quick ring_rejects_writes_and_non_rings;
  ]
