open Dmn_prelude
module I = Dmn_core.Instance
module St = Dmn_dynamic.Stream
module Sg = Dmn_dynamic.Strategy
module Sim = Dmn_dynamic.Sim

let stationary_respects_frequencies () =
  let rng = Rng.create 131 in
  let inst = Util.random_graph_instance ~objects:2 rng 8 in
  if I.total_requests inst ~x:0 + I.total_requests inst ~x:1 > 0 then begin
    let events = St.stationary rng inst ~length:20_000 in
    Alcotest.(check int) "length" 20_000 (List.length events);
    let fr, fw = St.frequencies inst events in
    (* empirical proportions track the table: nodes with zero frequency
       get zero events *)
    for x = 0 to 1 do
      for v = 0 to I.n inst - 1 do
        if I.reads inst ~x v = 0 then Alcotest.(check int) "no phantom reads" 0 fr.(x).(v);
        if I.writes inst ~x v = 0 then Alcotest.(check int) "no phantom writes" 0 fw.(x).(v)
      done
    done
  end

let static_strategy_replays_static_cost () =
  (* over one full period of the exact table, the static strategy's
     expected cost equals the static objective; with a deterministic
     enumeration of the table it matches exactly *)
  let rng = Rng.create 132 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 8 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      (* enumerate the table exactly as a stream *)
      let events = ref [] in
      for v = 0 to n - 1 do
        for _ = 1 to I.reads inst ~x:0 v do
          events := { St.node = v; x = 0; kind = St.Read } :: !events
        done;
        for _ = 1 to I.writes inst ~x:0 v do
          events := { St.node = v; x = 0; kind = St.Write } :: !events
        done
      done;
      let copies = Dmn_core.Approx.place_object inst ~x:0 in
      let p = Dmn_core.Placement.make [| copies |] in
      let r = Sim.run inst (Sg.static inst p) !events in
      let b = Dmn_core.Cost.eval_mst inst ~x:0 copies in
      Util.check_cost "serving == read + update"
        (b.Dmn_core.Cost.read +. b.Dmn_core.Cost.update)
        r.Sim.serving;
      Util.check_cost "storage == rent over one period" b.Dmn_core.Cost.storage r.Sim.storage;
      Util.check_cost "totals" (Dmn_core.Cost.total b) r.Sim.total
    end
  done

let migrating_owner_follows_hotspot () =
  (* all requests from one node: the owner must migrate there *)
  let g = Dmn_graph.Gen.path 6 in
  let cs = [| 0.5; 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let inst = I.of_graph g ~cs ~fr:[| [| 0; 0; 0; 0; 0; 10 |] |] ~fw:[| Array.make 6 0 |] in
  let strat = Sg.migrating_owner ~threshold:3 inst in
  let events = List.init 20 (fun _ -> { St.node = 5; x = 0; kind = St.Read }) in
  let _ = Sim.run inst strat events in
  Alcotest.(check (list int)) "owner moved to the hotspot" [ 5 ] (strat.Sg.copies ~x:0)

let threshold_caching_replicates_and_drops () =
  let g = Dmn_graph.Gen.path 8 in
  let cs = Array.make 8 1.0 in
  cs.(0) <- 0.5;
  let inst = I.of_graph g ~cs ~fr:[| Array.make 8 1 |] ~fw:[| Array.make 8 1 |] in
  let strat = Sg.threshold_caching ~replicate_after:2 ~drop_after:3 inst in
  (* reads from node 7 force a replica there *)
  let reads = List.init 4 (fun _ -> { St.node = 7; x = 0; kind = St.Read }) in
  let _ = Sim.run inst strat reads in
  Alcotest.(check bool) "replicated at reader" true (List.mem 7 (strat.Sg.copies ~x:0));
  (* a write burst from node 0 evicts the idle replica *)
  let writes = List.init 6 (fun _ -> { St.node = 0; x = 0; kind = St.Write }) in
  let _ = Sim.run inst strat writes in
  Alcotest.(check bool) "idle replica dropped" true (not (List.mem 7 (strat.Sg.copies ~x:0)))

let static_wins_stationary_dynamic_wins_drifting () =
  let rng = Rng.create 134 in
  let n = 16 in
  let g = Dmn_graph.Gen.random_geometric rng n 0.4 in
  let cs = Array.make n 2.0 in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(8 * n) ~write_fraction:0.2
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let static_placement = Dmn_core.Placement.make [| Dmn_baselines.Greedy_place.add inst ~x:0 |] in
  (* stationary: the tuned static placement should beat the adaptive
     caching strategy *)
  let stationary = St.stationary (Rng.create 7) inst ~length:(16 * n) in
  let s_static = Sim.run inst (Sg.static inst static_placement) stationary in
  let s_cache = Sim.run inst (Sg.threshold_caching inst) stationary in
  Util.check_leq "static wins on its own distribution" s_static.Sim.total
    (s_cache.Sim.total *. 1.05);
  (* drifting: the adaptive strategy must beat the stale static one *)
  let drift =
    St.drifting (Rng.create 8) inst ~phases:6 ~phase_length:(8 * n) ~write_fraction:0.1
  in
  let d_static = Sim.run inst (Sg.static inst static_placement) drift in
  let d_cache = Sim.run inst (Sg.threshold_caching inst) drift in
  Util.check_leq "adaptive wins under drift" d_cache.Sim.total (d_static.Sim.total *. 1.05)

let suite =
  [
    Alcotest.test_case "stationary stream frequencies" `Quick stationary_respects_frequencies;
    Alcotest.test_case "static strategy replays static cost" `Quick
      static_strategy_replays_static_cost;
    Alcotest.test_case "migrating owner follows hotspot" `Quick migrating_owner_follows_hotspot;
    Alcotest.test_case "threshold caching replicates/drops" `Quick
      threshold_caching_replicates_and_drops;
    Alcotest.test_case "static vs dynamic crossover" `Quick
      static_wins_stationary_dynamic_wins_drifting;
  ]
