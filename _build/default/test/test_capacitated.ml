open Dmn_prelude
module I = Dmn_core.Instance
module Cap = Dmn_cap.Capplace

let cap_instance rng ~objects ~n ~cap =
  let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
  let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 6.0) in
  let fr = Array.init objects (fun _ -> Array.init n (fun _ -> Rng.int rng 5)) in
  let fw = Array.init objects (fun _ -> Array.make n 0) in
  let inst = I.of_graph g ~cs ~fr ~fw in
  Cap.create inst ~capacity:(Array.make n cap)

let create_validates () =
  let rng = Rng.create 151 in
  let g = Dmn_graph.Gen.path 3 in
  let inst =
    I.of_graph g ~cs:(Array.make 3 1.0)
      ~fr:(Array.init 4 (fun _ -> Array.make 3 1))
      ~fw:(Array.init 4 (fun _ -> Array.make 3 0))
  in
  (match Cap.create inst ~capacity:[| 1; 1; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "4 objects into 3 slots accepted");
  ignore rng

let solvers_respect_capacity () =
  let rng = Rng.create 152 in
  for _ = 1 to 12 do
    let n = 3 + Rng.int rng 7 in
    let objects = 1 + Rng.int rng 3 in
    let cap = 1 + Rng.int rng 2 in
    if objects <= n * cap then begin
      let t = cap_instance rng ~objects ~n ~cap in
      List.iter
        (fun (name, solve) ->
          let p = solve t in
          match Cap.validate t p with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s violates capacity: %s" name e)
        [ ("greedy", Cap.greedy); ("local", fun t -> Cap.local_search t) ]
    end
  done

let local_improves_on_greedy () =
  let rng = Rng.create 153 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 6 in
    let t = cap_instance rng ~objects:2 ~n ~cap:1 in
    let g = Cap.cost t (Cap.greedy t) in
    let l = Cap.cost t (Cap.local_search t) in
    Util.check_leq "local <= greedy" l (g +. 1e-9)
  done

let matches_exact_on_tiny () =
  let rng = Rng.create 154 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 3 in
    let objects = 1 + Rng.int rng 2 in
    if objects * n <= 18 then begin
      let t = cap_instance rng ~objects ~n ~cap:1 in
      let _, opt = Cap.exact t in
      let l = Cap.cost t (Cap.local_search t) in
      Util.check_leq "local within 1.5x of optimum" l ((1.5 *. opt) +. 1e-6);
      Util.check_leq "optimum <= local" opt (l +. 1e-9)
    end
  done

let lp_bounds_exact () =
  let rng = Rng.create 155 in
  for _ = 1 to 8 do
    let n = 3 + Rng.int rng 3 in
    let objects = 1 + Rng.int rng 2 in
    if objects * n <= 18 then begin
      let t = cap_instance rng ~objects ~n ~cap:1 in
      let _, opt = Cap.exact t in
      let lb = Cap.lp_bound t in
      Util.check_leq "LP <= OPT" lb (opt +. 1e-6)
    end
  done

let capacity_one_forces_spreading () =
  (* 3 objects, 3 nodes, capacity 1: placement must be a perfect
     matching of objects to nodes *)
  let g = Dmn_graph.Gen.path 3 in
  let inst =
    I.of_graph g ~cs:(Array.make 3 1.0)
      ~fr:[| [| 9; 0; 0 |]; [| 0; 9; 0 |]; [| 0; 0; 9 |] |]
      ~fw:(Array.init 3 (fun _ -> Array.make 3 0))
  in
  let t = Cap.create inst ~capacity:[| 1; 1; 1 |] in
  let p = Cap.local_search t in
  (match Cap.validate t p with Ok () -> () | Error e -> Alcotest.fail e);
  (* each object reads only from "its" node, so the matching is the
     identity *)
  for x = 0 to 2 do
    Alcotest.(check (list int)) "identity matching" [ x ] (Dmn_core.Placement.copies p ~x)
  done

let uncapacitated_equals_flp_like () =
  (* with huge capacity, the capacitated optimum coincides with the
     per-object read-only optimum *)
  let rng = Rng.create 156 in
  for _ = 1 to 6 do
    let n = 3 + Rng.int rng 3 in
    let t = cap_instance rng ~objects:1 ~n ~cap:n in
    let _, opt = Cap.exact t in
    let _, unconstrained = Dmn_core.Exact.opt_mst t.Cap.inst ~x:0 in
    Util.check_cost "no capacity pressure => same optimum" unconstrained opt
  done

let with_writes_model () =
  (* full cost model under capacities: solvers stay feasible and the
     exhaustive optimum under capacity >= the unconstrained optimum *)
  let rng = Rng.create 157 in
  for _ = 1 to 8 do
    let n = 3 + Rng.int rng 3 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.5 in
    let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 6.0) in
    let fr = Array.init 2 (fun _ -> Array.init n (fun _ -> Rng.int rng 4)) in
    let fw = Array.init 2 (fun _ -> Array.init n (fun _ -> Rng.int rng 3)) in
    let inst = I.of_graph g ~cs ~fr ~fw in
    let t = Cap.create ~include_writes:true inst ~capacity:(Array.make n 1) in
    let p = Cap.local_search t in
    (match Cap.validate t p with Ok () -> () | Error e -> Alcotest.fail e);
    if 2 * n <= 18 then begin
      let _, opt_cap = Cap.exact t in
      let unconstrained =
        Dmn_core.Cost.total_mst inst ~x:0 (fst (Dmn_core.Exact.opt_mst inst ~x:0))
        +. Dmn_core.Cost.total_mst inst ~x:1 (fst (Dmn_core.Exact.opt_mst inst ~x:1))
      in
      Util.check_leq "capacity can only hurt" unconstrained (opt_cap +. 1e-6);
      Util.check_leq "local >= exact" opt_cap (Cap.cost t p +. 1e-6)
    end
  done

let lp_bound_rejects_writes () =
  let rng = Rng.create 158 in
  let inst = Util.random_graph_instance rng 4 in
  let t = Cap.create ~include_writes:true inst ~capacity:(Array.make 4 2) in
  match Cap.lp_bound t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lp_bound should reject the write model"

let suite =
  [
    Alcotest.test_case "create validates" `Quick create_validates;
    Alcotest.test_case "capacity respected" `Quick solvers_respect_capacity;
    Alcotest.test_case "local improves greedy" `Quick local_improves_on_greedy;
    Alcotest.test_case "near exact on tiny" `Quick matches_exact_on_tiny;
    Alcotest.test_case "LP lower bound" `Quick lp_bounds_exact;
    Alcotest.test_case "capacity one spreads" `Quick capacity_one_forces_spreading;
    Alcotest.test_case "huge capacity == unconstrained" `Quick uncapacitated_equals_flp_like;
    Alcotest.test_case "write model under capacities" `Quick with_writes_model;
    Alcotest.test_case "lp bound rejects writes" `Quick lp_bound_rejects_writes;
  ]
