open Dmn_prelude
open Dmn_graph
open Dmn_paths
open Dmn_span

let dsu_basics () =
  let d = Dmn_dsu.Dsu.create 6 in
  Alcotest.(check int) "initial count" 6 (Dmn_dsu.Dsu.count d);
  Alcotest.(check bool) "union" true (Dmn_dsu.Dsu.union d 0 1);
  Alcotest.(check bool) "redundant union" false (Dmn_dsu.Dsu.union d 1 0);
  Alcotest.(check bool) "same" true (Dmn_dsu.Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (Dmn_dsu.Dsu.same d 0 2);
  ignore (Dmn_dsu.Dsu.union d 2 3);
  ignore (Dmn_dsu.Dsu.union d 0 2);
  Alcotest.(check int) "count" 3 (Dmn_dsu.Dsu.count d);
  Alcotest.(check int) "size" 4 (Dmn_dsu.Dsu.size d 3)

let mst_known () =
  (* classic 4-node example *)
  let g =
    Wgraph.create 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0); (3, 0, 4.0); (0, 2, 5.0) ]
  in
  let _, wk = Kruskal.mst g in
  let _, wp = Prim.mst g in
  Util.check_float "kruskal" 6.0 wk;
  Util.check_float "prim" 6.0 wp

let kruskal_equals_prim () =
  let rng = Rng.create 31 in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 40 in
    let g = Gen.erdos_renyi rng n 0.2 in
    let edges_k, wk = Kruskal.mst g in
    let edges_p, wp = Prim.mst g in
    Util.check_cost "same weight" wk wp;
    Alcotest.(check int) "kruskal tree edges" (n - 1) (List.length edges_k);
    Alcotest.(check int) "prim tree edges" (n - 1) (List.length edges_p);
    (* both must be spanning and acyclic *)
    let check_spanning edges =
      let d = Dmn_dsu.Dsu.create n in
      List.iter (fun (u, v, _) -> ignore (Dmn_dsu.Dsu.union d u v)) edges;
      Alcotest.(check int) "spanning" 1 (Dmn_dsu.Dsu.count d)
    in
    check_spanning edges_k;
    check_spanning edges_p
  done

let mst_of_subset_cases () =
  let m = Metric.of_graph (Gen.path 5) in
  let edges, w = Kruskal.mst_of_subset m [ 0; 2; 4 ] in
  Util.check_float "path subset" 4.0 w;
  Alcotest.(check int) "two edges" 2 (List.length edges);
  let _, w0 = Kruskal.mst_of_subset m [] in
  Util.check_float "empty" 0.0 w0;
  let _, w1 = Kruskal.mst_of_subset m [ 3 ] in
  Util.check_float "singleton" 0.0 w1;
  let _, wd = Kruskal.mst_of_subset m [ 1; 1; 3 ] in
  Util.check_float "duplicates ignored" 2.0 wd

let steiner_approx_valid_tree () =
  let rng = Rng.create 32 in
  for _ = 1 to 25 do
    let n = 3 + Rng.int rng 25 in
    let g = Gen.erdos_renyi rng n 0.25 in
    let k = 2 + Rng.int rng (min 6 (n - 1)) in
    let terminals = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
    let edges, w = Steiner.approx g terminals in
    (* tree connects the terminals *)
    let d = Dmn_dsu.Dsu.create n in
    List.iter (fun (u, v, _) -> ignore (Dmn_dsu.Dsu.union d u v)) edges;
    let t0 = List.hd terminals in
    List.iter
      (fun t -> Alcotest.(check bool) "terminal connected" true (Dmn_dsu.Dsu.same d t0 t))
      terminals;
    (* acyclic: edges <= nodes - 1 within the touched node set *)
    let touched = Hashtbl.create 16 in
    List.iter
      (fun (u, v, _) ->
        Hashtbl.replace touched u ();
        Hashtbl.replace touched v ())
      edges;
    Alcotest.(check bool) "forest" true (List.length edges <= max 0 (Hashtbl.length touched - 1));
    Util.check_cost "weight consistent" w
      (List.fold_left (fun acc (_, _, x) -> acc +. x) 0.0 edges)
  done

let steiner_two_approx () =
  let rng = Rng.create 33 in
  for _ = 1 to 25 do
    let n = 3 + Rng.int rng 10 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let m = Metric.of_graph g in
    let k = 2 + Rng.int rng (min 5 (n - 1)) in
    let terminals = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
    let _, w_approx = Steiner.approx g terminals in
    let w_mst_metric = Steiner.approx_weight_metric m terminals in
    let w_exact = Steiner.exact_weight m terminals in
    Util.check_leq "exact <= approx" w_exact (w_approx +. 1e-9);
    Util.check_leq "approx <= 2 exact" w_approx (2.0 *. w_exact +. 1e-9);
    Util.check_leq "metric mst <= 2 exact" w_mst_metric (2.0 *. w_exact +. 1e-9);
    Util.check_leq "exact <= metric mst" w_exact (w_mst_metric +. 1e-9)
  done

let steiner_exact_on_star () =
  (* star with center 0: terminals = leaves; optimum uses the center *)
  let g = Gen.star 5 in
  let m = Metric.of_graph g in
  Util.check_float "star steiner" 4.0 (Steiner.exact_weight m [ 1; 2; 3; 4 ]);
  (* metric-closure MST over the leaves costs 2 per pair joined *)
  Util.check_float "leaf mst" 6.0 (Steiner.approx_weight_metric m [ 1; 2; 3; 4 ])

let steiner_all_roots_consistent () =
  let rng = Rng.create 34 in
  for _ = 1 to 15 do
    let n = 3 + Rng.int rng 8 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let m = Metric.of_graph g in
    let k = 1 + Rng.int rng (min 4 n) in
    let terminals = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
    let table = Steiner.exact_all_roots m terminals in
    for v = 0 to n - 1 do
      Util.check_cost "all_roots row" (Steiner.exact_weight m (v :: terminals)) table.(v)
    done
  done

let steiner_degenerate () =
  let g = Gen.path 4 in
  let m = Metric.of_graph g in
  let _, w = Steiner.approx g [ 2 ] in
  Util.check_float "single terminal" 0.0 w;
  Util.check_float "exact single" 0.0 (Steiner.exact_weight m [ 2 ]);
  Util.check_float "exact empty" 0.0 (Steiner.exact_weight m [])

let qcheck_mst_agreement =
  QCheck.Test.make ~name:"Prim == Kruskal weights" ~count:100
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n 0.3 in
      Dmn_prelude.Floatx.approx ~tol:1e-6 (snd (Kruskal.mst g)) (snd (Prim.mst g)))

let qcheck_steiner_bound =
  QCheck.Test.make ~name:"Steiner approx within 2x exact" ~count:60
    QCheck.(pair small_int (int_range 3 9))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n 0.4 in
      let m = Metric.of_graph g in
      let k = min n (2 + Rng.int rng 4) in
      let terminals = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
      let _, w = Steiner.approx g terminals in
      let e = Steiner.exact_weight m terminals in
      w <= (2.0 *. e) +. 1e-6 && e <= w +. 1e-6)

let suite =
  [
    Alcotest.test_case "dsu basics" `Quick dsu_basics;
    Alcotest.test_case "mst known example" `Quick mst_known;
    Alcotest.test_case "kruskal == prim" `Quick kruskal_equals_prim;
    Alcotest.test_case "mst of metric subset" `Quick mst_of_subset_cases;
    Alcotest.test_case "steiner approx is a connecting forest" `Quick steiner_approx_valid_tree;
    Alcotest.test_case "steiner 2-approximation bound" `Quick steiner_two_approx;
    Alcotest.test_case "steiner star example" `Quick steiner_exact_on_star;
    Alcotest.test_case "exact_all_roots consistency" `Quick steiner_all_roots_consistent;
    Alcotest.test_case "steiner degenerate inputs" `Quick steiner_degenerate;
    Util.qtest qcheck_mst_agreement;
    Util.qtest qcheck_steiner_bound;
  ]
