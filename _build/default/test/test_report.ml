open Dmn_prelude
module I = Dmn_core.Instance
module R = Dmn_core.Report

let audit_of_approx_is_clean () =
  let rng = Rng.create 161 in
  for _ = 1 to 8 do
    let n = 4 + Rng.int rng 8 in
    let inst = Util.random_graph_instance ~objects:2 rng n in
    let p = Dmn_core.Approx.solve inst in
    let report = R.build inst p in
    Alcotest.(check int) "objects" 2 (List.length report.R.objects);
    List.iter
      (fun o ->
        Alcotest.(check bool) "proper" true o.R.proper;
        Alcotest.(check bool) "share in [0,1]" true
          (o.R.max_service_share >= 0.0 && o.R.max_service_share <= 1.0 +. 1e-9))
      report.R.objects;
    (* totals add up *)
    let manual = Dmn_core.Cost.placement_mst inst p in
    Util.check_cost "total matches" (Dmn_core.Cost.total manual) (Dmn_core.Cost.total report.R.total)
  done

let audit_flags_bad_placement () =
  (* full replication on a write-heavy instance is not proper: copies
     are too close together relative to their write radii *)
  let g = Dmn_graph.Gen.path 6 in
  let cs = Array.make 6 1.0 in
  let fr = [| Array.make 6 1 |] in
  let fw = [| Array.make 6 5 |] in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let p = Dmn_core.Placement.uniform ~objects:1 (List.init 6 Fun.id) in
  let report = R.build inst p in
  let o = List.hd report.R.objects in
  Alcotest.(check bool) "not proper" false o.R.proper;
  Alcotest.(check bool) "has violations" true (o.R.violations <> [])

let render_contains_rows () =
  let rng = Rng.create 162 in
  let inst = Util.random_graph_instance ~objects:3 rng 6 in
  let p = Dmn_core.Approx.solve inst in
  let s = R.render (R.build inst p) in
  Alcotest.(check bool) "mentions totals" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l >= 6 && String.sub l 0 6 = "total:") lines)

let suite =
  [
    Alcotest.test_case "audit of approx output" `Quick audit_of_approx_is_clean;
    Alcotest.test_case "audit flags bad placements" `Quick audit_flags_bad_placement;
    Alcotest.test_case "render" `Quick render_contains_rows;
  ]
