open Dmn_prelude
open Dmn_workload
module I = Dmn_core.Instance

let sum2 m = Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 m

let uniform_shapes () =
  let rng = Rng.create 81 in
  let m = Freq.uniform rng ~objects:3 ~n:10 ~max_count:4 in
  Alcotest.(check int) "objects" 3 (Array.length m.Freq.fr);
  Alcotest.(check int) "nodes" 10 (Array.length m.Freq.fr.(0));
  Array.iter
    (Array.iter (fun c -> if c < 0 || c > 4 then Alcotest.failf "count out of range %d" c))
    m.Freq.fr

let mix_totals () =
  let rng = Rng.create 82 in
  let m = Freq.mix rng ~objects:2 ~n:8 ~total:100 ~write_fraction:0.3 in
  for x = 0 to 1 do
    let reads = Array.fold_left ( + ) 0 m.Freq.fr.(x) in
    let writes = Array.fold_left ( + ) 0 m.Freq.fw.(x) in
    Alcotest.(check int) "conserved" 100 (reads + writes)
  done;
  (* write fraction roughly honored over both objects *)
  let writes = sum2 m.Freq.fw in
  Alcotest.(check bool) "rough fraction" true (writes > 30 && writes < 90)

let mix_extremes () =
  let rng = Rng.create 83 in
  let m0 = Freq.mix rng ~objects:1 ~n:5 ~total:50 ~write_fraction:0.0 in
  Alcotest.(check int) "no writes" 0 (sum2 m0.Freq.fw);
  let m1 = Freq.mix rng ~objects:1 ~n:5 ~total:50 ~write_fraction:1.0 in
  Alcotest.(check int) "all writes" 0 (sum2 m1.Freq.fr)

let zipf_skew () =
  let rng = Rng.create 84 in
  let m = Freq.zipf rng ~objects:1 ~n:20 ~requests:2000 ~s:1.2 ~write_ratio:0.1 in
  let reads = Array.fold_left ( + ) 0 m.Freq.fr.(0) in
  Alcotest.(check int) "request volume" 2000 reads;
  let writes = Array.fold_left ( + ) 0 m.Freq.fw.(0) in
  Alcotest.(check int) "write volume" 200 writes;
  (* skew: the most popular node holds far more than the average *)
  let top = Array.fold_left max 0 m.Freq.fr.(0) in
  Alcotest.(check bool) "skewed" true (top > 3 * (reads / 20))

let hotspot_counts () =
  let rng = Rng.create 85 in
  let m = Freq.hotspot rng ~objects:1 ~n:12 ~readers:3 ~writers:2 ~volume:7 in
  let readers = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 m.Freq.fr.(0) in
  let writers = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 m.Freq.fw.(0) in
  Alcotest.(check int) "readers" 3 readers;
  Alcotest.(check int) "writers" 2 writers;
  Alcotest.(check int) "volume" 21 (sum2 m.Freq.fr)

let scale_writes_works () =
  let rng = Rng.create 86 in
  let m = Freq.mix rng ~objects:1 ~n:6 ~total:40 ~write_fraction:0.5 in
  let doubled = Freq.scale_writes 2.0 m in
  Alcotest.(check int) "doubled" (2 * sum2 m.Freq.fw) (sum2 doubled.Freq.fw);
  let zeroed = Freq.scale_writes 0.0 m in
  Alcotest.(check int) "zeroed" 0 (sum2 zeroed.Freq.fw);
  Alcotest.(check int) "reads untouched" (sum2 m.Freq.fr) (sum2 zeroed.Freq.fr)

let scenarios_build () =
  let rng = Rng.create 87 in
  let cdn = Scenario.web_cdn rng ~clusters:3 ~per_cluster:5 ~objects:2 in
  Alcotest.(check int) "cdn nodes" 15 (I.n cdn);
  Alcotest.(check int) "cdn objects" 2 (I.objects cdn);
  let vsm = Scenario.vsm_mesh rng ~rows:4 ~cols:4 ~objects:2 in
  Alcotest.(check int) "vsm nodes" 16 (I.n vsm);
  let dfs = Scenario.distributed_fs rng ~n:12 ~objects:2 in
  Alcotest.(check int) "dfs nodes" 12 (I.n dfs);
  Alcotest.(check bool) "dfs is tree" true
    (match I.graph dfs with Some g -> Dmn_graph.Wgraph.is_tree g | None -> false);
  let tl = Scenario.total_load rng ~n:10 ~objects:1 in
  for v = 0 to 9 do
    Util.check_float "total-load storage free" 0.0 (I.cs tl v)
  done

let scenarios_deterministic () =
  let build seed = Scenario.web_cdn (Rng.create seed) ~clusters:2 ~per_cluster:4 ~objects:1 in
  let a = build 5 and b = build 5 in
  for v = 0 to I.n a - 1 do
    Util.check_float "same cs" (I.cs a v) (I.cs b v);
    Alcotest.(check int) "same fr" (I.reads a ~x:0 v) (I.reads b ~x:0 v)
  done

let qcheck_mix_conserves =
  QCheck.Test.make ~name:"mix conserves request volume" ~count:100
    QCheck.(triple small_int (int_range 1 30) (int_range 0 100))
    (fun (seed, n, total) ->
      let rng = Rng.create seed in
      let m = Freq.mix rng ~objects:1 ~n ~total ~write_fraction:0.5 in
      Array.fold_left ( + ) 0 m.Freq.fr.(0) + Array.fold_left ( + ) 0 m.Freq.fw.(0) = total)

let suite =
  [
    Alcotest.test_case "uniform shapes" `Quick uniform_shapes;
    Alcotest.test_case "mix totals" `Quick mix_totals;
    Alcotest.test_case "mix extremes" `Quick mix_extremes;
    Alcotest.test_case "zipf skew" `Quick zipf_skew;
    Alcotest.test_case "hotspot counts" `Quick hotspot_counts;
    Alcotest.test_case "scale writes" `Quick scale_writes_works;
    Alcotest.test_case "scenarios build" `Quick scenarios_build;
    Alcotest.test_case "scenarios deterministic" `Quick scenarios_deterministic;
    Util.qtest qcheck_mix_conserves;
  ]
