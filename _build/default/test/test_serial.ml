open Dmn_prelude
module I = Dmn_core.Instance
module S = Dmn_core.Serial

let instance_roundtrip () =
  let rng = Rng.create 91 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 15 in
    let inst = Util.random_graph_instance ~objects:(1 + Rng.int rng 3) rng n in
    let inst2 = S.instance_of_string (S.instance_to_string inst) in
    Alcotest.(check int) "n" (I.n inst) (I.n inst2);
    Alcotest.(check int) "objects" (I.objects inst) (I.objects inst2);
    for v = 0 to n - 1 do
      Util.check_float "cs" (I.cs inst v) (I.cs inst2 v);
      for x = 0 to I.objects inst - 1 do
        Alcotest.(check int) "fr" (I.reads inst ~x v) (I.reads inst2 ~x v);
        Alcotest.(check int) "fw" (I.writes inst ~x v) (I.writes inst2 ~x v)
      done
    done;
    (* metrics agree *)
    let m1 = I.metric inst and m2 = I.metric inst2 in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        Util.check_cost "metric preserved" (Dmn_paths.Metric.d m1 u v) (Dmn_paths.Metric.d m2 u v)
      done
    done
  done

let placement_roundtrip () =
  let p = Dmn_core.Placement.make [| [ 3; 1 ]; [ 0 ]; [ 2; 4; 5 ] |] in
  let p2 = S.placement_of_string (S.placement_to_string p) in
  Alcotest.(check int) "objects" 3 (Dmn_core.Placement.objects p2);
  for x = 0 to 2 do
    Alcotest.(check (list int)) "copies"
      (Dmn_core.Placement.copies p ~x)
      (Dmn_core.Placement.copies p2 ~x)
  done

let rejects_garbage () =
  (match S.instance_of_string "not an instance" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "garbage accepted");
  match S.placement_of_string "dmnet-instance v1" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "wrong header accepted"

let comments_ignored () =
  let inst = Util.random_graph_instance (Rng.create 1) 4 in
  let s = "# a comment\n" ^ S.instance_to_string inst in
  let inst2 = S.instance_of_string s in
  Alcotest.(check int) "n" (I.n inst) (I.n inst2)

let file_io () =
  let path = Filename.temp_file "dmnet" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.write_file path "hello\nworld";
      Alcotest.(check string) "roundtrip" "hello\nworld" (S.read_file path))

let suite =
  [
    Alcotest.test_case "instance round trip" `Quick instance_roundtrip;
    Alcotest.test_case "placement round trip" `Quick placement_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick rejects_garbage;
    Alcotest.test_case "comments ignored" `Quick comments_ignored;
    Alcotest.test_case "file io" `Quick file_io;
  ]
