(* Shared helpers for the test suite: deterministic random instances. *)

open Dmn_prelude
open Dmn_graph

let check_float = Alcotest.(check (float 1e-6))

(* Approximate equality with relative slack for cost comparisons. *)
let check_cost msg expected actual =
  if not (Floatx.approx ~tol:1e-6 expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_leq msg a b =
  if not (Floatx.leq ~tol:1e-6 a b) then Alcotest.failf "%s: %.12g > %.12g" msg a b

(* Random tree-shaped data management instance. *)
let random_tree_instance ?(objects = 1) ?(max_count = 4) ?(zero_cs_prob = 0.1) rng n =
  let g = Gen.random_tree rng n in
  let cs =
    Array.init n (fun _ ->
        if Rng.float rng 1.0 < zero_cs_prob then 0.0 else Rng.float_in rng 0.5 25.0)
  in
  let counts () = Array.init n (fun _ -> Rng.int rng (max_count + 1)) in
  let fr = Array.init objects (fun _ -> counts ()) in
  let fw = Array.init objects (fun _ -> counts ()) in
  Dmn_core.Instance.of_graph g ~cs ~fr ~fw

(* Random general (connected) instance. *)
let random_graph_instance ?(objects = 1) ?(max_count = 4) ?(p = 0.4) rng n =
  let g = Gen.erdos_renyi rng n p in
  let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 25.0) in
  let counts () = Array.init n (fun _ -> Rng.int rng (max_count + 1)) in
  let fr = Array.init objects (fun _ -> counts ()) in
  let fw = Array.init objects (fun _ -> counts ()) in
  Dmn_core.Instance.of_graph g ~cs ~fr ~fw

let qtest = QCheck_alcotest.to_alcotest
