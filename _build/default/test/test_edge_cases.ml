(* Robustness: degenerate and adversarial inputs across the stack. *)

open Dmn_prelude
module I = Dmn_core.Instance
module A = Dmn_core.Approx
module C = Dmn_core.Cost

let single_node_network () =
  let g = Dmn_graph.Wgraph.create 1 [] in
  let inst = I.of_graph g ~cs:[| 2.0 |] ~fr:[| [| 3 |] |] ~fw:[| [| 1 |] |] in
  let copies = A.place_object inst ~x:0 in
  Alcotest.(check (list int)) "only choice" [ 0 ] copies;
  Util.check_float "cost = storage" 2.0 (C.total_mst inst ~x:0 copies)

let two_node_network () =
  let g = Dmn_graph.Gen.path 2 in
  let inst = I.of_graph g ~cs:[| 1.0; 100.0 |] ~fr:[| [| 0; 5 |] |] ~fw:[| [| 0; 0 |] |] in
  let copies = A.place_object inst ~x:0 in
  (* copy at 0 (cheap, distance 1) clearly beats 100 storage at 1 *)
  Alcotest.(check (list int)) "cheap side" [ 0 ] copies

let zero_request_object () =
  let rng = Rng.create 171 in
  let g = Dmn_graph.Gen.erdos_renyi rng 6 0.5 in
  let inst =
    I.of_graph g
      ~cs:(Array.init 6 (fun i -> float_of_int (i + 1)))
      ~fr:[| Array.make 6 0 |] ~fw:[| Array.make 6 0 |]
  in
  let copies = A.place_object inst ~x:0 in
  Alcotest.(check bool) "non-empty placement even without requests" true (copies <> []);
  (* exhaustive agrees: a single cheapest copy *)
  let opt, cost = Dmn_core.Exact.opt_mst inst ~x:0 in
  Alcotest.(check (list int)) "cheapest node" [ 0 ] opt;
  Util.check_float "cost 1" 1.0 cost

let all_writes_no_reads () =
  let rng = Rng.create 172 in
  for _ = 1 to 5 do
    let n = 3 + Rng.int rng 6 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.5 in
    let cs = Array.init n (fun _ -> Rng.float_in rng 1.0 5.0) in
    let fr = [| Array.make n 0 |] in
    let fw = [| Array.init n (fun _ -> Rng.int rng 4) |] in
    let inst = I.of_graph g ~cs ~fr ~fw in
    if I.total_writes inst ~x:0 > 0 then begin
      let _, opt = Dmn_core.Exact.opt_mst inst ~x:0 in
      (* write-only optimum keeps a single copy: any second copy costs
         extra storage and extra multicast *)
      let copies, _ = Dmn_core.Exact.opt_mst inst ~x:0 in
      Alcotest.(check int) "single copy" 1 (List.length copies);
      let krw = C.total_mst inst ~x:0 (A.place_object inst ~x:0) in
      Util.check_leq "krw reasonable" krw (10.0 *. opt)
    end
  done

let forbidden_nodes_avoided () =
  let rng = Rng.create 173 in
  let g = Dmn_graph.Gen.erdos_renyi rng 8 0.4 in
  let cs = Array.init 8 (fun i -> if i mod 2 = 0 then infinity else 2.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:1 ~n:8 ~total:30 ~write_fraction:0.2
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  List.iter
    (fun (name, copies) ->
      List.iter
        (fun v ->
          if I.cs inst v = infinity then Alcotest.failf "%s stored on forbidden node %d" name v)
        copies)
    [
      ("approx", A.place_object inst ~x:0);
      ("exact", fst (Dmn_core.Exact.opt_mst inst ~x:0));
      ("bnb", fst (Dmn_core.Bnb.opt_mst inst ~x:0));
      ("greedy-add", Dmn_baselines.Greedy_place.add inst ~x:0);
    ]

let zero_weight_edges () =
  (* distance-0 pairs: radii, phases and the DP must all survive *)
  let g = Dmn_graph.Wgraph.create 4 [ (0, 1, 0.0); (1, 2, 1.0); (2, 3, 0.0) ] in
  let inst =
    I.of_graph g ~cs:[| 1.0; 1.0; 1.0; 1.0 |] ~fr:[| [| 2; 2; 2; 2 |] |] ~fw:[| [| 1; 0; 0; 0 |] |]
  in
  let copies = A.place_object inst ~x:0 in
  Alcotest.(check bool) "placed" true (copies <> []);
  let _, dp = Dmn_tree.Tree_solver.place_object inst ~x:0 in
  let _, opt = Dmn_tree.Tree_exact.opt inst ~x:0 ~root:0 in
  Util.check_cost "tree DP with zero-weight edges" opt dp

let identical_nodes_tie_handling () =
  (* several nodes with identical distances and counts: radii defining
     inequalities must still hold (the rs <= d(zs) relaxation) *)
  let g = Dmn_graph.Gen.star 6 in
  let inst =
    I.of_graph g ~cs:(Array.make 6 3.0) ~fr:[| Array.make 6 2 |] ~fw:[| Array.make 6 1 |]
  in
  let r = Dmn_core.Radii.compute inst ~x:0 in
  match Dmn_core.Radii.check inst ~x:0 r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "radii on ties: %s" e

let huge_weights_no_overflow () =
  let g = Dmn_graph.Wgraph.create 3 [ (0, 1, 1e12); (1, 2, 1e12) ] in
  let inst =
    I.of_graph g ~cs:[| 1e9; 1e9; 1e9 |] ~fr:[| [| 5; 5; 5 |] |] ~fw:[| [| 1; 1; 1 |] |]
  in
  let copies = A.place_object inst ~x:0 in
  let c = C.total_mst inst ~x:0 copies in
  Alcotest.(check bool) "finite cost" true (Float.is_finite c)

let disconnected_rejected () =
  let g = Dmn_graph.Wgraph.create 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  match I.of_graph g ~cs:(Array.make 4 1.0) ~fr:[| Array.make 4 1 |] ~fw:[| Array.make 4 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disconnected graph accepted"

let empty_stream_simulation () =
  let rng = Rng.create 174 in
  let inst = Util.random_graph_instance rng 5 in
  let p = Dmn_core.Placement.uniform ~objects:1 [ 0 ] in
  let r = Dmn_dynamic.Sim.run inst (Dmn_dynamic.Strategy.static inst p) [] in
  Util.check_float "no cost" 0.0 r.Dmn_dynamic.Sim.total

let suite =
  [
    Alcotest.test_case "single node" `Quick single_node_network;
    Alcotest.test_case "two nodes" `Quick two_node_network;
    Alcotest.test_case "zero-request object" `Quick zero_request_object;
    Alcotest.test_case "write-only object" `Quick all_writes_no_reads;
    Alcotest.test_case "forbidden nodes" `Quick forbidden_nodes_avoided;
    Alcotest.test_case "zero-weight edges" `Quick zero_weight_edges;
    Alcotest.test_case "tied distances" `Quick identical_nodes_tie_handling;
    Alcotest.test_case "huge weights" `Quick huge_weights_no_overflow;
    Alcotest.test_case "disconnected rejected" `Quick disconnected_rejected;
    Alcotest.test_case "empty stream" `Quick empty_stream_simulation;
  ]
