(* Stress tier: heavier differential validation than the unit suite.
   Exits non-zero on the first disagreement. *)

open Dmn_prelude
module I = Dmn_core.Instance

let failures = ref 0

(* local copies of the unit suite's instance builders *)
let random_tree_instance rng n =
  let g = Dmn_graph.Gen.random_tree rng n in
  let cs =
    Array.init n (fun _ -> if Rng.float rng 1.0 < 0.1 then 0.0 else Rng.float_in rng 0.5 25.0)
  in
  let fr = [| Array.init n (fun _ -> Rng.int rng 5) |] in
  let fw = [| Array.init n (fun _ -> Rng.int rng 5) |] in
  I.of_graph g ~cs ~fr ~fw

let random_graph_instance rng n =
  let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
  let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 25.0) in
  let fr = [| Array.init n (fun _ -> Rng.int rng 5) |] in
  let fw = [| Array.init n (fun _ -> Rng.int rng 5) |] in
  I.of_graph g ~cs ~fr ~fw

let check name ok = if not ok then begin incr failures; Printf.printf "FAIL %s\n%!" name end

let section name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "%-52s done in %6.1fs\n%!" name (Unix.gettimeofday () -. t0)

let () =
  section "tree DP vs brute force, 1000 general instances" (fun () ->
      let rng = Rng.create 90001 in
      for trial = 1 to 1000 do
        let n = 2 + Rng.int rng 12 in
        let inst = random_tree_instance rng n in
        if I.total_requests inst ~x:0 > 0 then begin
          let _, dp = Dmn_tree.Tree_solver.place_object inst ~x:0 in
          let _, opt = Dmn_tree.Tree_exact.opt inst ~x:0 ~root:0 in
          check (Printf.sprintf "tree trial %d" trial) (Floatx.approx ~tol:1e-6 dp opt)
        end
      done);
  section "literal vs envelope read-only DP, 2000 instances" (fun () ->
      let rng = Rng.create 90002 in
      for trial = 1 to 2000 do
        let n = 2 + Rng.int rng 20 in
        let g = Dmn_graph.Gen.random_tree rng n in
        let cs = Array.init n (fun _ -> Rng.float_in rng 0.0 25.0) in
        let fr = [| Array.init n (fun _ -> Rng.int rng 6) |] in
        let fw = [| Array.make n 0 |] in
        let inst = I.of_graph g ~cs ~fr ~fw in
        if I.total_requests inst ~x:0 > 0 then begin
          let td = Dmn_tree.Tdata.of_instance inst ~x:0 ~root:0 in
          let a = Dmn_tree.Ro_dp_literal.solve_cost td in
          let _, b = Dmn_tree.Ro_dp.solve td in
          check (Printf.sprintf "literal trial %d" trial) (Floatx.approx ~tol:1e-6 a b)
        end
      done);
  section "branch-and-bound vs enumeration, 200 instances" (fun () ->
      let rng = Rng.create 90003 in
      for trial = 1 to 200 do
        let n = 2 + Rng.int rng 13 in
        let inst = random_graph_instance rng n in
        if I.total_requests inst ~x:0 > 0 then begin
          let _, a = Dmn_core.Bnb.opt_mst inst ~x:0 in
          let _, b = Dmn_core.Exact.opt_mst inst ~x:0 in
          check (Printf.sprintf "bnb trial %d" trial) (Floatx.approx ~tol:1e-6 a b)
        end
      done);
  section "branch-and-bound at n = 28" (fun () ->
      let rng = Rng.create 90004 in
      let n = 28 in
      let g = Dmn_graph.Gen.random_geometric rng n 0.35 in
      let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 15.0) in
      let { Dmn_workload.Freq.fr; fw } =
        Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.25
      in
      let inst = I.of_graph g ~cs ~fr ~fw in
      let copies, cost = Dmn_core.Bnb.opt_mst ~node_limit:20_000_000 inst ~x:0 in
      check "bnb n=28 self-consistent"
        (Floatx.approx ~tol:1e-6 (Dmn_core.Cost.total_mst inst ~x:0 copies) cost));
  section "KRW proper on 500 instances up to n = 40" (fun () ->
      let rng = Rng.create 90005 in
      for trial = 1 to 500 do
        let n = 3 + Rng.int rng 38 in
        let inst = random_graph_instance rng n in
        if I.total_requests inst ~x:0 > 0 then begin
          let copies = Dmn_core.Approx.place_object inst ~x:0 in
          let radii = Dmn_core.Radii.compute inst ~x:0 in
          check
            (Printf.sprintf "proper trial %d" trial)
            (Dmn_core.Proper.is_proper inst ~x:0 ~k1:29.0 ~k2:2.0 radii copies)
        end
      done);
  section "per-edge simultaneous optimality, 300 trees" (fun () ->
      let rng = Rng.create 90006 in
      for trial = 1 to 300 do
        let n = 2 + Rng.int rng 14 in
        let g = Dmn_graph.Gen.random_tree rng n in
        let cs = Array.make n 0.0 in
        let { Dmn_workload.Freq.fr; fw } =
          Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.3
        in
        let inst = I.of_graph g ~cs ~fr ~fw in
        if I.total_requests inst ~x:0 > 0 then begin
          let _, lb = Dmn_loadmodel.Tree_load.per_edge_lower_bound inst ~x:0 ~root:0 in
          let _, opt = Dmn_tree.Tree_solver.place_object inst ~x:0 in
          check (Printf.sprintf "load trial %d" trial) (Floatx.approx ~tol:1e-6 lb opt)
        end
      done);
  section "tree DP scale: n = 2000 caterpillar" (fun () ->
      let rng = Rng.create 90007 in
      let n = 2000 in
      let g = Dmn_graph.Gen.caterpillar rng n in
      let cs = Array.init n (fun _ -> Rng.float_in rng 1.0 20.0) in
      let { Dmn_workload.Freq.fr; fw } =
        Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(3 * n) ~write_fraction:0.3
      in
      let inst = I.of_graph g ~cs ~fr ~fw in
      let copies, cost = Dmn_tree.Tree_solver.place_object inst ~x:0 in
      check "n=2000 finite" (Float.is_finite cost && copies <> []));
  if !failures > 0 then begin
    Printf.printf "%d stress failures\n" !failures;
    exit 1
  end
  else print_endline "all stress checks passed"
