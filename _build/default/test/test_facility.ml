open Dmn_prelude
open Dmn_graph
open Dmn_paths
open Dmn_facility

let random_flp rng n =
  let g = Gen.erdos_renyi rng n 0.3 in
  let m = Metric.of_graph g in
  let opening = Array.init n (fun _ -> Rng.float_in rng 0.5 20.0) in
  let demand = Array.init n (fun _ -> float_of_int (Rng.int rng 5)) in
  Flp.create m ~opening ~demand

let cost_decomposition () =
  let m = Metric.of_graph (Gen.path 4) in
  let inst = Flp.create m ~opening:[| 5.0; 5.0; 5.0; 5.0 |] ~demand:[| 1.0; 1.0; 1.0; 1.0 |] in
  Util.check_float "opening" 5.0 (Flp.opening_cost inst [ 1 ]);
  Util.check_float "connection" 4.0 (Flp.connection_cost inst [ 1 ]);
  Util.check_float "total" 9.0 (Flp.cost inst [ 1 ]);
  Util.check_float "duplicates in open set" 5.0 (Flp.opening_cost inst [ 1; 1 ]);
  let assign = Flp.assignment inst [ 0; 3 ] in
  Alcotest.(check (array int)) "assignment" [| 0; 0; 3; 3 |] assign

let validate_checks () =
  let m = Metric.of_graph (Gen.path 3) in
  let inst = Flp.create m ~opening:[| 1.0; infinity; 1.0 |] ~demand:[| 1.0; 1.0; 1.0 |] in
  (match Flp.validate inst [] with Error _ -> () | Ok () -> Alcotest.fail "empty accepted");
  (match Flp.validate inst [ 1 ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forbidden site accepted");
  match Flp.validate inst [ 0; 2 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid solution rejected: %s" e

let solvers = [ ("greedy", Greedy.solve); ("local-search", fun i -> Local_search.solve i);
                ("jain-vazirani", Jain_vazirani.solve); ("mettu-plaxton", Mettu_plaxton.solve) ]

let solvers_return_valid () =
  let rng = Rng.create 41 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 15 in
    let inst = random_flp rng n in
    List.iter
      (fun (name, solve) ->
        let opens = solve inst in
        match Flp.validate inst opens with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: invalid solution: %s" name e)
      solvers
  done

(* Empirical approximation factors vs exhaustive optimum. The proven
   factors are 3 (JV, MP), 5+eps (local search), O(log n) (greedy); we
   assert the proven bound plus slack for greedy. *)
let solver_quality () =
  let rng = Rng.create 42 in
  for _ = 1 to 12 do
    let n = 3 + Rng.int rng 9 in
    let inst = random_flp rng n in
    let opt = Exact.opt_cost inst in
    List.iter
      (fun (name, solve, bound) ->
        let c = Flp.cost inst (solve inst) in
        Util.check_leq (Printf.sprintf "%s within factor %.1f" name bound) c
          ((bound *. opt) +. 1e-6))
      [
        ("local-search", (fun i -> Local_search.solve i), 5.2);
        ("jain-vazirani", Jain_vazirani.solve, 3.0);
        ("mettu-plaxton", Mettu_plaxton.solve, 3.0);
        ("greedy", Greedy.solve, 2.0 *. log (float_of_int n +. 2.0));
      ]
  done

let local_search_local_optimality () =
  (* no single add or drop improves the local search solution *)
  let rng = Rng.create 43 in
  for _ = 1 to 8 do
    let n = 3 + Rng.int rng 10 in
    let inst = random_flp rng n in
    let opens = Local_search.solve inst in
    let c = Flp.cost inst opens in
    for v = 0 to n - 1 do
      if not (List.mem v opens) then
        Util.check_leq "add does not improve much" c (Flp.cost inst (v :: opens) +. c *. 1e-2)
    done;
    List.iter
      (fun v ->
        let rest = List.filter (fun u -> u <> v) opens in
        if rest <> [] then
          Util.check_leq "drop does not improve much" c (Flp.cost inst rest +. c *. 1e-2))
      opens
  done

let mettu_plaxton_radii () =
  (* the defining equation: sum_j w_j max(0, r - d) = f *)
  let rng = Rng.create 44 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 12 in
    let inst = random_flp rng n in
    let r = Mettu_plaxton.radii inst in
    for v = 0 to n - 1 do
      if r.(v) < infinity then begin
        let paid = ref 0.0 in
        for j = 0 to n - 1 do
          paid :=
            !paid
            +. (inst.Flp.demand.(j) *. Float.max 0.0 (r.(v) -. Metric.d inst.Flp.metric v j))
        done;
        Util.check_cost "radius equation" inst.Flp.opening.(v) !paid
      end
    done
  done

let jain_vazirani_duals () =
  (* weak duality sanity: the duals cover the solution's connection cost
     scale; alpha_j >= d(j, nearest open) for served clients. *)
  let rng = Rng.create 45 in
  for _ = 1 to 8 do
    let n = 3 + Rng.int rng 9 in
    let inst = random_flp rng n in
    let opens, alpha = Jain_vazirani.duals inst in
    let opt = Exact.opt_cost inst in
    (* each client with demand reaches some open facility within alpha *)
    for j = 0 to n - 1 do
      if inst.Flp.demand.(j) > 0.0 then begin
        let _, d = Metric.nearest inst.Flp.metric j opens in
        Util.check_leq "client reaches opened facility within alpha" d (alpha.(j) +. 1e-6)
      end
    done;
    Util.check_leq "3-approximation" (Flp.cost inst opens) ((3.0 *. opt) +. 1e-6)
  done

let exact_brute_force_small () =
  (* hand instance: path of 3, expensive middle *)
  let m = Metric.of_graph (Gen.path 3) in
  let inst = Flp.create m ~opening:[| 1.0; 100.0; 1.0 |] ~demand:[| 10.0; 1.0; 10.0 |] in
  let opens = Exact.solve inst in
  Alcotest.(check (list int)) "both ends" [ 0; 2 ] (List.sort compare opens)

let zero_demand_instances () =
  let m = Metric.of_graph (Gen.path 3) in
  let inst = Flp.create m ~opening:[| 3.0; 1.0; 2.0 |] ~demand:[| 0.0; 0.0; 0.0 |] in
  List.iter
    (fun (name, solve) ->
      let opens = solve inst in
      match Flp.validate inst opens with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s zero-demand: %s" name e)
    solvers

let qcheck_mp_within_3 =
  QCheck.Test.make ~name:"Mettu-Plaxton within 3x optimum" ~count:40
    QCheck.(pair small_int (int_range 3 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = random_flp rng n in
      let c = Flp.cost inst (Mettu_plaxton.solve inst) in
      c <= (3.0 *. Exact.opt_cost inst) +. 1e-6)

let qcheck_jv_within_3 =
  QCheck.Test.make ~name:"Jain-Vazirani within 3x optimum" ~count:40
    QCheck.(pair small_int (int_range 3 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = random_flp rng n in
      let c = Flp.cost inst (Jain_vazirani.solve inst) in
      c <= (3.0 *. Exact.opt_cost inst) +. 1e-6)

let suite =
  [
    Alcotest.test_case "cost decomposition" `Quick cost_decomposition;
    Alcotest.test_case "solution validation" `Quick validate_checks;
    Alcotest.test_case "solvers return valid solutions" `Quick solvers_return_valid;
    Alcotest.test_case "solver quality vs optimum" `Quick solver_quality;
    Alcotest.test_case "local search local optimality" `Quick local_search_local_optimality;
    Alcotest.test_case "mettu-plaxton radius equation" `Quick mettu_plaxton_radii;
    Alcotest.test_case "jain-vazirani duals" `Quick jain_vazirani_duals;
    Alcotest.test_case "exact brute force" `Quick exact_brute_force_small;
    Alcotest.test_case "zero demand degenerate" `Quick zero_demand_instances;
    Util.qtest qcheck_mp_within_3;
    Util.qtest qcheck_jv_within_3;
  ]
