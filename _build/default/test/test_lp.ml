open Dmn_prelude
module S = Dmn_lp.Simplex

let opt = function
  | S.Optimal { value; x } -> (value, x)
  | S.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | S.Unbounded -> Alcotest.fail "unexpectedly unbounded"

let textbook_max () =
  (* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> (2, 6), 36 *)
  let v, x =
    opt
      (S.maximize ~objective:[| 3.0; 5.0 |]
         ~constraints:
           [
             ([| 1.0; 0.0 |], S.Le, 4.0);
             ([| 0.0; 2.0 |], S.Le, 12.0);
             ([| 3.0; 2.0 |], S.Le, 18.0);
           ])
  in
  Util.check_float "value" 36.0 v;
  Util.check_float "x" 2.0 x.(0);
  Util.check_float "y" 6.0 x.(1)

let min_with_ge () =
  (* min 2x + 3y s.t. x + y >= 4; x + 3y >= 6 -> (3, 1), 9 *)
  let v, x =
    opt
      (S.minimize ~objective:[| 2.0; 3.0 |]
         ~constraints:[ ([| 1.0; 1.0 |], S.Ge, 4.0); ([| 1.0; 3.0 |], S.Ge, 6.0) ])
  in
  Util.check_float "value" 9.0 v;
  Util.check_float "x" 3.0 x.(0);
  Util.check_float "y" 1.0 x.(1)

let equality_constraints () =
  (* min x + 2y s.t. x + y = 3; x - y = 1 -> (2, 1), 4 *)
  let v, _ =
    opt
      (S.minimize ~objective:[| 1.0; 2.0 |]
         ~constraints:[ ([| 1.0; 1.0 |], S.Eq, 3.0); ([| 1.0; -1.0 |], S.Eq, 1.0) ])
  in
  Util.check_float "value" 4.0 v

let negative_rhs_normalized () =
  (* min x s.t. -x <= -5  (i.e. x >= 5) *)
  let v, _ =
    opt (S.minimize ~objective:[| 1.0 |] ~constraints:[ ([| -1.0 |], S.Le, -5.0) ])
  in
  Util.check_float "value" 5.0 v

let infeasible_detected () =
  match
    S.minimize ~objective:[| 1.0 |]
      ~constraints:[ ([| 1.0 |], S.Le, 1.0); ([| 1.0 |], S.Ge, 2.0) ]
  with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "should be infeasible"

let unbounded_detected () =
  match S.maximize ~objective:[| 1.0 |] ~constraints:[ ([| -1.0 |], S.Le, 1.0) ] with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "should be unbounded"

let degenerate_no_cycle () =
  (* classic degenerate LP; Bland's rule must terminate *)
  let v, _ =
    opt
      (S.minimize
         ~objective:[| -0.75; 150.0; -0.02; 6.0 |]
         ~constraints:
           [
             ([| 0.25; -60.0; -0.04; 9.0 |], S.Le, 0.0);
             ([| 0.5; -90.0; -0.02; 3.0 |], S.Le, 0.0);
             ([| 0.0; 0.0; 1.0; 0.0 |], S.Le, 1.0);
           ])
  in
  Util.check_float "beale value" (-0.05) v

let random_lps_feasible_solutions () =
  (* random feasible LPs: check returned point satisfies constraints and
     beats a known feasible point *)
  let rng = Rng.create 141 in
  for _ = 1 to 30 do
    let nv = 2 + Rng.int rng 4 in
    let nc = 1 + Rng.int rng 5 in
    let objective = Array.init nv (fun _ -> Rng.float_in rng (-5.0) 5.0) in
    (* constraints a.x <= b with b >= 0 so x = 0 is feasible; bounded by
       adding sum x <= 10 *)
    let constraints =
      List.init nc (fun _ ->
          (Array.init nv (fun _ -> Rng.float_in rng (-3.0) 3.0), S.Le, Rng.float_in rng 0.0 10.0))
      @ [ (Array.make nv 1.0, S.Le, 10.0) ]
    in
    match S.minimize ~objective ~constraints with
    | S.Optimal { value; x } ->
        List.iter
          (fun (row, _, rhs) ->
            let lhs = ref 0.0 in
            Array.iteri (fun j c -> lhs := !lhs +. (c *. x.(j))) row;
            Util.check_leq "constraint satisfied" !lhs (rhs +. 1e-6))
          constraints;
        Array.iter (fun v -> Util.check_leq "nonneg" 0.0 (v +. 1e-9)) x;
        Util.check_leq "at least as good as x=0" value 1e-9
    | S.Infeasible -> Alcotest.fail "x=0 is feasible"
    | S.Unbounded -> Alcotest.fail "sum bound prevents unboundedness"
  done

let sta_lp_lower_bounds_ip () =
  let rng = Rng.create 142 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 6 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
    let m = Dmn_paths.Metric.of_graph g in
    let opening = Array.init n (fun _ -> Rng.float_in rng 1.0 12.0) in
    let demand = Array.init n (fun _ -> float_of_int (Rng.int rng 5)) in
    let inst = Dmn_facility.Flp.create m ~opening ~demand in
    let lp = Dmn_facility.Sta.lp_value inst in
    let ip = Dmn_facility.Exact.opt_cost inst in
    Util.check_leq "LP <= IP" lp (ip +. 1e-6)
  done

let sta_rounding_within_factor () =
  let rng = Rng.create 143 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 6 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
    let m = Dmn_paths.Metric.of_graph g in
    let opening = Array.init n (fun _ -> Rng.float_in rng 1.0 12.0) in
    let demand = Array.init n (fun _ -> float_of_int (Rng.int rng 5)) in
    let inst = Dmn_facility.Flp.create m ~opening ~demand in
    let opens = Dmn_facility.Sta.solve inst in
    (match Dmn_facility.Flp.validate inst opens with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e);
    let c = Dmn_facility.Flp.cost inst opens in
    let opt = Dmn_facility.Exact.opt_cost inst in
    Util.check_leq "STA within factor 4" c ((4.0 *. opt) +. 1e-6)
  done

let sta_in_pipeline () =
  (* STA as phase 1 of the paper's algorithm still yields a proper
     placement *)
  let rng = Rng.create 144 in
  let inst = Util.random_graph_instance rng 10 in
  if Dmn_core.Instance.total_requests inst ~x:0 > 0 then begin
    let flp = Dmn_core.Instance.related_flp inst ~x:0 in
    let phase1 = Dmn_facility.Sta.solve flp in
    let radii = Dmn_core.Radii.compute inst ~x:0 in
    let config = Dmn_core.Approx.default_config in
    let copies =
      Dmn_core.Approx.phase3 ~config inst radii
        (Dmn_core.Approx.phase2 ~config inst ~x:0 radii phase1)
    in
    Alcotest.(check bool) "proper" true
      (Dmn_core.Proper.is_proper inst ~x:0 ~k1:29.0 ~k2:2.0 radii copies)
  end

let chudak_shmoys_quality () =
  (* randomized rounding: valid solutions, empirical factor comfortably
     within 2x on small instances (proven expectation 1 + 2/e) *)
  let rng = Rng.create 145 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 6 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
    let m = Dmn_paths.Metric.of_graph g in
    let opening = Array.init n (fun _ -> Rng.float_in rng 1.0 12.0) in
    let demand = Array.init n (fun _ -> float_of_int (Rng.int rng 5)) in
    let inst = Dmn_facility.Flp.create m ~opening ~demand in
    let opens = Dmn_facility.Chudak_shmoys.solve (Rng.create 1) inst in
    (match Dmn_facility.Flp.validate inst opens with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invalid: %s" e);
    let c = Dmn_facility.Flp.cost inst opens in
    let opt = Dmn_facility.Exact.opt_cost inst in
    Util.check_leq "CS within 2x here" c ((2.0 *. opt) +. 1e-6)
  done

let chudak_shmoys_deterministic () =
  let rng = Rng.create 146 in
  let g = Dmn_graph.Gen.erdos_renyi rng 8 0.4 in
  let m = Dmn_paths.Metric.of_graph g in
  let opening = Array.init 8 (fun _ -> Rng.float_in rng 1.0 12.0) in
  let demand = Array.init 8 (fun _ -> float_of_int (Rng.int rng 5)) in
  let inst = Dmn_facility.Flp.create m ~opening ~demand in
  let a = Dmn_facility.Chudak_shmoys.solve (Rng.create 5) inst in
  let b = Dmn_facility.Chudak_shmoys.solve (Rng.create 5) inst in
  Alcotest.(check (list int)) "seeded determinism" a b

let suite =
  [
    Alcotest.test_case "textbook maximization" `Quick textbook_max;
    Alcotest.test_case "minimization with >=" `Quick min_with_ge;
    Alcotest.test_case "equality constraints" `Quick equality_constraints;
    Alcotest.test_case "negative rhs" `Quick negative_rhs_normalized;
    Alcotest.test_case "infeasible" `Quick infeasible_detected;
    Alcotest.test_case "unbounded" `Quick unbounded_detected;
    Alcotest.test_case "degenerate (Beale)" `Quick degenerate_no_cycle;
    Alcotest.test_case "random LPs" `Quick random_lps_feasible_solutions;
    Alcotest.test_case "FLP relaxation lower-bounds IP" `Quick sta_lp_lower_bounds_ip;
    Alcotest.test_case "STA rounding factor" `Quick sta_rounding_within_factor;
    Alcotest.test_case "STA in the pipeline" `Quick sta_in_pipeline;
    Alcotest.test_case "Chudak-Shmoys quality" `Quick chudak_shmoys_quality;
    Alcotest.test_case "Chudak-Shmoys determinism" `Quick chudak_shmoys_deterministic;
  ]
