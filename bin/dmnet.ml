(* dmnet: command-line interface to the data-management library.

   Subcommands:
     gen      generate an instance (topology x workload) to a file
     solve    place objects with a chosen algorithm
     eval     evaluate a stored placement against an instance
     compare  run all algorithms on one instance and tabulate
     radii    print the write/storage radii of an instance
     replay   stream a request trace through the replay engine
     serve    long-running online serving daemon (socket/stdin ingest)
     ctl      send a control command to a running daemon
     fsck     validate/repair checkpoint and journal directories offline *)

open Cmdliner
open Dmn_prelude
module I = Dmn_core.Instance
module C = Dmn_core.Cost
module A = Dmn_core.Approx

(* ---------- structured error reporting ----------

   Every command body runs under [protect]: a structured [Err.Error]
   (parse, validation, I/O, injected fault) becomes a one-line
   "dmnet: error: <context>" on stderr plus a class-specific exit code
   (65 data, 70 injected fault, 74 I/O — sysexits(3)), instead of an
   uncaught exception with a backtrace. Commands evaluate to their exit
   code via [Cmd.eval']. *)

let protect f =
  try
    f ();
    0
  with Err.Error e ->
    Printf.eprintf "dmnet: error: %s\n%!" (Err.to_string e);
    Err.exit_code e

let load_instance file = Err.get_ok (Dmn_core.Serial.load_instance file)

let exits =
  Cmd.Exit.info 65 ~doc:"on malformed or invalid input data (parse or validation error)."
  :: Cmd.Exit.info 70 ~doc:"on a deterministically injected fault (chaos testing)."
  :: Cmd.Exit.info 74 ~doc:"on a file I/O error."
  :: Cmd.Exit.defaults

(* ---------- shared arguments ---------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (deterministic).")

let nodes_arg =
  Arg.(value & opt int 20 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let objects_arg =
  Arg.(value & opt int 1 & info [ "objects" ] ~docv:"K" ~doc:"Number of shared objects.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if omitted).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~docv:"D"
        ~doc:
          "Domains used for parallel per-object solving and metric closures (default: \
           $(b,DMNET_DOMAINS) or the recommended domain count). Results are identical for \
           every value.")

let set_domains = function
  | None -> ()
  | Some d ->
      if d < 1 then (
        Printf.eprintf "--domains must be >= 1\n";
        exit 2);
      Pool.set_default_domains d

let instance_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTANCE" ~doc:"Instance file produced by $(b,dmnet gen).")

let emit out s = match out with None -> print_string s | Some f -> Dmn_core.Serial.write_file f s

(* ---------- gen ---------- *)

let topology_conv =
  Arg.enum
    [
      ("tree", `Tree); ("path", `Path); ("ring", `Ring); ("grid", `Grid);
      ("er", `Er); ("geometric", `Geometric); ("clustered", `Clustered);
    ]

let workload_conv =
  Arg.enum [ ("mix", `Mix); ("zipf", `Zipf); ("hotspot", `Hotspot); ("uniform", `Uniform) ]

let gen_cmd =
  let topology =
    Arg.(value & opt topology_conv `Er & info [ "topology" ] ~docv:"TOPO"
           ~doc:"Topology: tree, path, ring, grid, er, geometric, clustered. Note that \
                 $(b,grid) builds a rows x cols mesh with rows = floor(sqrt(N)) and rounds N \
                 $(b,up) to the nearest full rectangle, so the instance may have more nodes \
                 than requested (a warning is printed when it does).")
  in
  let workload =
    Arg.(value & opt workload_conv `Mix & info [ "workload" ] ~docv:"WL"
           ~doc:"Workload: mix, zipf, hotspot, uniform.")
  in
  let write_fraction =
    Arg.(value & opt float 0.2 & info [ "write-fraction" ] ~docv:"F"
           ~doc:"Write share of the request mix.")
  in
  let requests =
    Arg.(value & opt int 0 & info [ "requests" ] ~docv:"R"
           ~doc:"Requests per object (0 = 5 per node).")
  in
  let storage =
    Arg.(value & opt float 10.0 & info [ "storage" ] ~docv:"CS"
           ~doc:"Storage fee scale (fees drawn in [CS/2, 3CS/2]).")
  in
  let run seed n objects topology workload write_fraction requests storage domains out =
    protect @@ fun () ->
    set_domains domains;
    let rng = Rng.create seed in
    let g =
      match topology with
      | `Tree -> Dmn_graph.Gen.random_tree rng n
      | `Path -> Dmn_graph.Gen.path n
      | `Ring -> Dmn_graph.Gen.ring n
      | `Grid ->
          let r = max 1 (int_of_float (Float.sqrt (float_of_int n))) in
          let c = max 1 ((n + r - 1) / r) in
          if r * c <> n then
            Printf.eprintf
              "dmnet: warning: --topology grid rounds n=%d up to a %dx%d mesh (%d nodes)\n%!" n
              r c (r * c);
          Dmn_graph.Gen.grid r c
      | `Er -> Dmn_graph.Gen.erdos_renyi rng n 0.25
      | `Geometric -> Dmn_graph.Gen.random_geometric rng n 0.35
      | `Clustered ->
          let c = max 1 (n / 8) in
          Dmn_graph.Gen.clustered rng ~clusters:c ~per_cluster:(max 1 (n / c))
    in
    let n = Dmn_graph.Wgraph.n g in
    let total = if requests > 0 then requests else 5 * n in
    let { Dmn_workload.Freq.fr; fw } =
      match workload with
      | `Mix -> Dmn_workload.Freq.mix rng ~objects ~n ~total ~write_fraction
      | `Zipf ->
          Dmn_workload.Freq.zipf rng ~objects ~n ~requests:total ~s:1.0
            ~write_ratio:write_fraction
      | `Hotspot ->
          Dmn_workload.Freq.hotspot rng ~objects ~n ~readers:(max 1 (n / 4))
            ~writers:(max 1 (n / 10)) ~volume:(max 1 (total / n))
      | `Uniform -> Dmn_workload.Freq.uniform rng ~objects ~n ~max_count:(max 1 (total / n))
    in
    let cs = Array.init n (fun _ -> Rng.float_in rng (storage /. 2.0) (1.5 *. storage)) in
    let inst = I.of_graph g ~cs ~fr ~fw in
    emit out (Dmn_core.Serial.instance_to_string inst)
  in
  let term =
    Term.(
      const run $ seed_arg $ nodes_arg $ objects_arg $ topology $ workload $ write_fraction
      $ requests $ storage $ domains_arg $ out_arg)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a data-management instance." ~exits) term

(* ---------- algorithms ---------- *)

let algorithms inst =
  let approx solver inst ~x = A.place_object ~config:{ A.default_config with A.solver } inst ~x in
  let base =
    [
      ("approx-mp", approx A.Mettu_plaxton);
      ("approx-jv", approx A.Jain_vazirani);
      ("approx-ls", approx A.Local_search);
      ("approx-greedy", approx A.Greedy);
      ("single", Dmn_baselines.Naive.best_single);
      ("full", Dmn_baselines.Naive.full_replication);
      ("greedy-add", fun inst ~x -> Dmn_baselines.Greedy_place.add inst ~x);
      ("local", fun inst ~x -> Dmn_baselines.Local_place.solve inst ~x);
    ]
  in
  let tree_based =
    match I.graph inst with
    | Some g when Dmn_graph.Wgraph.is_tree g ->
        [ ("tree-opt", fun inst ~x -> fst (Dmn_tree.Tree_solver.place_object inst ~x)) ]
    | _ -> []
  in
  let sta = if I.n inst <= 40 then [ ("approx-sta", approx A.Sta_lp) ] else [] in
  let exact =
    (if I.n inst <= 16 then [ ("exact-mst", fun inst ~x -> fst (Dmn_core.Exact.opt_mst inst ~x)) ]
     else [])
    @ if I.n inst <= 26 then [ ("exact-bnb", fun inst ~x -> fst (Dmn_core.Bnb.opt_mst inst ~x)) ] else []
  in
  base @ sta @ tree_based @ exact

let algo_names inst = List.map fst (algorithms inst)

let lookup_algo inst name =
  match List.assoc_opt name (algorithms inst) with
  | Some f -> f
  | None ->
      Printf.eprintf "unknown algorithm %s (available: %s)\n" name
        (String.concat ", " (algo_names inst));
      exit 2

let solve_placement inst algo =
  Dmn_core.Placement.make
    (Array.init (I.objects inst) (fun x -> lookup_algo inst algo inst ~x))

(* ---------- solve ---------- *)

let solve_cmd =
  let algo =
    Arg.(value & opt string "approx-mp" & info [ "algo" ] ~docv:"ALGO"
           ~doc:"Algorithm: approx-mp/jv/ls/greedy/sta, single, full, greedy-add, local, tree-opt (trees), exact-mst/exact-bnb (small n).")
  in
  let audit =
    Arg.(value & flag & info [ "audit" ] ~doc:"Print a full placement audit (per-object breakdown, properness, restrictedness).")
  in
  let run file algo audit domains out =
    protect @@ fun () ->
    set_domains domains;
    let inst = load_instance file in
    let p = solve_placement inst algo in
    if audit then print_string (Dmn_core.Report.render (Dmn_core.Report.build inst p))
    else begin
      let b = C.placement_mst inst p in
      Printf.eprintf "%s: storage %.3f + read %.3f + update %.3f = total %.3f\n" algo b.C.storage
        b.C.read b.C.update (C.total b)
    end;
    emit out (Dmn_core.Serial.placement_to_string p)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Place all objects of an instance." ~exits)
    Term.(const run $ instance_arg $ algo $ audit $ domains_arg $ out_arg)

(* ---------- eval ---------- *)

let eval_cmd =
  let placement_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PLACEMENT" ~doc:"Placement file.")
  in
  let run inst_file placement_file =
    protect @@ fun () ->
    let inst = load_instance inst_file in
    let p = Err.get_ok (Dmn_core.Serial.load_placement placement_file) in
    (match Dmn_core.Placement.validate inst p with
    | Ok () -> ()
    | Error e ->
        Err.failf ~file:placement_file Err.Validation "placement does not fit the instance: %s" e);
    let b = C.placement_mst inst p in
    Printf.printf "storage %.6f\nread    %.6f\nupdate  %.6f\ntotal   %.6f\n" b.C.storage
      b.C.read b.C.update (C.total b)
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a placement (MST update policy)." ~exits)
    Term.(const run $ instance_arg $ placement_arg)

(* ---------- compare ---------- *)

let compare_cmd =
  let run file domains =
    protect @@ fun () ->
    set_domains domains;
    let inst = load_instance file in
    let tbl = Tbl.create [ "algorithm"; "storage"; "read"; "update"; "total"; "copies" ] in
    List.iter
      (fun (name, _) ->
        let p = solve_placement inst name in
        let b = C.placement_mst inst p in
        let copies =
          List.init (I.objects inst) (fun x -> Dmn_core.Placement.copy_count p ~x)
          |> List.fold_left ( + ) 0
        in
        Tbl.add_row tbl
          [
            name; Tbl.fl2 b.C.storage; Tbl.fl2 b.C.read; Tbl.fl2 b.C.update;
            Tbl.fl2 (C.total b); string_of_int copies;
          ])
      (algorithms inst);
    Tbl.print tbl
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every applicable algorithm and tabulate costs." ~exits)
    Term.(const run $ instance_arg $ domains_arg)

(* ---------- loadprofile ---------- *)

let loadprofile_cmd =
  let algo =
    Arg.(value & opt string "approx-mp" & info [ "algo" ] ~docv:"ALGO" ~doc:"Algorithm to place with.")
  in
  let run file algo =
    protect @@ fun () ->
    let inst = load_instance file in
    let p = solve_placement inst algo in
    let profile = Dmn_loadmodel.Net_load.of_placement inst p in
    let tbl = Tbl.create [ "edge"; "load"; "fee"; "weighted" ] in
    let g =
      match I.graph inst with
      | Some g -> g
      | None ->
          Err.fail ~file Err.Validation
            "loadprofile requires a graph-backed instance (this one is metric-backed, so \
             per-edge loads are undefined)"
    in
    List.iter
      (fun (u, v, load) ->
        let fee = Dmn_graph.Wgraph.edge_weight g u v in
        Tbl.add_row tbl
          [
            Printf.sprintf "%d-%d" u v; Tbl.fl load; Tbl.fl fee; Tbl.fl2 (load *. fee);
          ])
      profile.Dmn_loadmodel.Net_load.load;
    Tbl.print tbl;
    Printf.printf "total weighted load %.3f, max edge %.3f\n"
      profile.Dmn_loadmodel.Net_load.total_weighted profile.Dmn_loadmodel.Net_load.max_weighted
  in
  Cmd.v
    (Cmd.info "loadprofile" ~doc:"Per-edge routed load of a placement (congestion view)." ~exits)
    Term.(const run $ instance_arg $ algo)

(* ---------- replay ---------- *)

module E = Dmn_engine.Engine
module Stream = Dmn_dynamic.Stream
module Cs = Dmn_core.Ckpt_store

(* Load the newest valid generation from a checkpoint directory,
   warning (not failing) when corrupt newer generations were skipped —
   the durability layer's whole point is that this degrades instead of
   exiting 65. *)
let load_ckptdir ~who dir =
  let l = Err.get_ok (Cs.load_res dir) in
  if l.Cs.fallbacks > 0 then
    Printf.eprintf
      "dmnet %s: warning: checkpoint fallback in %s — skipped %d corrupt newer \
       generation(s)/manifest, resuming from gen %d\n\
       %!"
      who dir l.Cs.fallbacks l.Cs.generation;
  l.Cs.ckpt

let replay_cmd =
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH"
           ~doc:"Replay the request trace at $(docv): a dmnet-trace v1 file (e.g. from \
                 --trace-out) or a segmented journal directory written by $(b,dmnet serve \
                 --journal). Exactly one of $(b,--trace) and $(b,--scenario) is required.")
  in
  let scenario =
    Arg.(value
         & opt
             (some
                (Arg.enum
                   [
                     ("stationary", `Stationary); ("drifting", `Drifting);
                     ("diurnal", `Diurnal); ("flash", `Flash);
                     ("birthdeath", `Birthdeath); ("failures", `Failures);
                   ]))
             None
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"Generate the stream instead of reading a file: $(b,stationary) samples the \
                   instance's frequency tables i.i.d.; $(b,drifting) moves a hotspot between \
                   phases (adversarial for static placements); $(b,diurnal) cycles demand \
                   between node halves while congesting the heaviest links (topology events); \
                   $(b,flash) spikes one object 100x for half the trace; $(b,birthdeath) \
                   rotates the active object set; $(b,failures) fails and repairs nodes under \
                   a moving hotspot (topology events; graph-backed instances only).")
  in
  let events =
    Arg.(value & opt int 10000 & info [ "events" ] ~docv:"R"
           ~doc:"Stream length for --scenario.")
  in
  let phases =
    Arg.(value & opt int 10 & info [ "phases" ] ~docv:"P"
           ~doc:"Hotspot phases for --scenario drifting (phase length = R/P).")
  in
  let write_fraction =
    Arg.(value & opt float 0.2 & info [ "write-fraction" ] ~docv:"F"
           ~doc:"Write share for --scenario drifting.")
  in
  let epoch =
    Arg.(value & opt int 1000 & info [ "epoch" ] ~docv:"M"
           ~doc:"Events per epoch: the engine buffers M events, serves them sharded over the \
                 domain pool, then re-optimizes (policy resolve) and snapshots metrics.")
  in
  let policy =
    Arg.(value
         & opt (Arg.enum [ ("static", E.Static); ("resolve", E.Resolve); ("cache", E.Cache) ])
             E.Resolve
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"static (never replan), resolve (re-solve from observed frequencies every \
                   epoch, paying migration), or cache (per-event threshold caching).")
  in
  let period =
    Arg.(value & opt (some int) None & info [ "period" ] ~docv:"T"
           ~doc:"Storage period: events per full storage-rent charge (default: the instance's \
                 request volume).")
  in
  let algo =
    Arg.(value & opt string "approx-mp" & info [ "algo" ] ~docv:"ALGO"
           ~doc:"Algorithm for the initial placement (see $(b,dmnet solve)).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the metrics JSON to $(docv) (atomic write; stdout if omitted).")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"With --scenario: persist the generated stream as a trace file, then replay \
                 from it (the replay streams from disk, exercising the same path as --trace).")
  in
  let ckpt_path =
    Arg.(value & opt (some string) None & info [ "ckpt" ] ~docv:"DIR"
           ~doc:"Write crash-safe checkpoint generations into the directory $(docv) \
                 (dmnet-ckptdir v1: atomic generation files plus an atomic CRC-guarded \
                 manifest, newest $(b,--ckpt-keep) retained) every $(b,--ckpt-every) epochs; \
                 resume later with $(b,--resume) $(docv).")
  in
  let ckpt_every =
    Arg.(value & opt int 1 & info [ "ckpt-every" ] ~docv:"N"
           ~doc:"Checkpoint after every N-th epoch (with --ckpt; default 1).")
  in
  let ckpt_keep =
    Arg.(value & opt int 3 & info [ "ckpt-keep" ] ~docv:"K"
           ~doc:"Keep the newest K checkpoint generations (with --ckpt; default 3). Loading \
                 falls back to an older generation when a newer one is corrupt.")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"CKPTDIR"
           ~doc:"Resume an interrupted replay from the newest valid checkpoint generation in \
                 $(docv) (corrupt newer generations are skipped with a warning). Requires \
                 $(b,--trace) with the same trace the original run consumed (verified by \
                 fingerprint; for a journal directory, pruned segments are vouched for by the \
                 checkpoint); policy, epoch size and storage period are taken from the \
                 checkpoint. The final metrics JSON is byte-identical to an uninterrupted run.")
  in
  let retries =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"K"
           ~doc:"Retry a failed pool task (crash or injected fault) up to K times before \
                 giving up — a failed epoch re-solve then falls back to the previous \
                 placement instead of aborting.")
  in
  let tolerate_truncation =
    Arg.(value & flag & info [ "tolerate-truncation" ]
           ~doc:"Accept a trace whose final line was cut mid-write (crash artifact): stop at \
                 the last complete event instead of failing.")
  in
  let dirty_eps =
    Arg.(value & opt float 0.3 & info [ "dirty-eps" ] ~docv:"EPS"
           ~doc:"Incremental re-solve threshold (policy resolve): at each epoch boundary an \
                 object is re-solved only when the normalized L1 distance between its current \
                 and last-solved frequency vectors exceeds $(docv) (objects are always \
                 re-solved after a topology change, an emergency re-replication, or their \
                 first request). 0 re-solves every object every epoch — byte-identical to the \
                 pre-incremental engine. The dirty set is a pure function of the trace, so \
                 determinism across --domains is unaffected. On --resume the value is taken \
                 from the checkpoint.")
  in
  let solve_cache =
    Arg.(value & opt int 0 & info [ "solve-cache" ] ~docv:"CAP"
           ~doc:"Memoize per-object placement solves in a bounded LRU of $(docv) entries, \
                 keyed on the topology hash, solver configuration, storage-fee scale, and the \
                 object's quantized frequency vector — recurring demand regimes then reuse \
                 the cached placement instead of re-running the solver. 0 (default) disables. \
                 Not combinable with --ckpt/--resume (cache contents are not checkpointed).")
  in
  let run file trace scenario events phases write_fraction epoch policy period algo metrics_out
      trace_out ckpt_path ckpt_every ckpt_keep resume retries tolerate_truncation dirty_eps
      solve_cache seed domains =
    protect @@ fun () ->
    set_domains domains;
    if retries < 0 then begin
      Printf.eprintf "dmnet replay: --retries must be >= 0\n";
      exit 2
    end;
    if ckpt_every < 1 then begin
      Printf.eprintf "dmnet replay: --ckpt-every must be >= 1\n";
      exit 2
    end;
    if ckpt_keep < 1 then begin
      Printf.eprintf "dmnet replay: --ckpt-keep must be >= 1\n";
      exit 2
    end;
    if dirty_eps < 0.0 || Float.is_nan dirty_eps then begin
      Printf.eprintf "dmnet replay: --dirty-eps must be >= 0\n";
      exit 2
    end;
    if solve_cache < 0 then begin
      Printf.eprintf "dmnet replay: --solve-cache must be >= 0\n";
      exit 2
    end;
    let inst = load_instance file in
    let config =
      {
        E.default_config with
        E.policy;
        epoch;
        storage_period = period;
        attempts = retries + 1;
        dirty_eps;
        solve_cache;
      }
    in
    let ckpt = Option.map (fun dir -> { E.dir; every = ckpt_every; keep = ckpt_keep }) ckpt_path in
    let make_seq () =
      let rng = Rng.create seed in
      match scenario with
      | Some `Stationary -> Stream.items_of_events (Stream.stationary_seq rng inst ~length:events)
      | Some `Drifting ->
          let phase_length = max 1 (events / max 1 phases) in
          Stream.items_of_events
            (Stream.drifting_seq rng inst ~phases ~phase_length ~write_fraction)
      | Some `Diurnal ->
          Dmn_workload.Adversary.diurnal rng inst ~days:(max 1 phases)
            ~day_length:(max 2 (events / max 1 phases))
            ~write_fraction
      | Some `Flash ->
          Dmn_workload.Adversary.flash_crowd rng inst ~length:events ~spike_at:(events / 4)
            ~spike_length:(events / 2) ~multiplier:100 ~write_fraction
      | Some `Birthdeath -> Dmn_workload.Adversary.birth_death rng inst ~length:events ~write_fraction
      | Some `Failures ->
          Dmn_workload.Adversary.failure_repair rng inst ~phases:(max 1 phases)
            ~phase_length:(max 1 (events / max 1 phases))
            ~write_fraction
      | None -> assert false
    in
    let result =
      match resume with
      | Some cpath ->
          let path =
            match (trace, scenario) with
            | Some p, None -> p
            | _ ->
                Printf.eprintf
                  "dmnet replay: --resume requires --trace FILE (the same trace the \
                   interrupted run consumed), not --scenario\n";
                exit 2
          in
          let c = load_ckptdir ~who:"replay" cpath in
          let policy =
            match E.policy_of_string c.Dmn_core.Serial.Checkpoint.policy with
            | Some p -> p
            | None ->
                Err.failf ~file:cpath Err.Validation "unknown checkpoint policy %s"
                  c.Dmn_core.Serial.Checkpoint.policy
          in
          (* the checkpoint is authoritative for the run geometry; the
             initial placement below only carries the shape contract
             (the engine restores the real copy sets from [c]) *)
          let config =
            {
              config with
              E.policy;
              epoch = c.Dmn_core.Serial.Checkpoint.epoch_size;
              storage_period = Some c.Dmn_core.Serial.Checkpoint.period;
              dirty_eps = c.Dmn_core.Serial.Checkpoint.dirty_eps;
            }
          in
          let placement =
            try Dmn_core.Placement.make (Array.copy c.Dmn_core.Serial.Checkpoint.placements)
            with Invalid_argument msg -> Err.fail ~file:cpath Err.Validation msg
          in
          E.run_trace ~config ?ckpt ~resume:c ~tolerate_truncation inst placement path
      | None -> (
          let placement = solve_placement inst algo in
          match (trace, scenario) with
          | Some path, None ->
              if trace_out <> None then begin
                Printf.eprintf "dmnet replay: --trace-out only applies to --scenario streams\n";
                exit 2
              end;
              E.run_trace ~config ?ckpt ~tolerate_truncation inst placement path
          | None, Some _ -> (
              match trace_out with
              | Some path ->
                  let header =
                    { Dmn_core.Serial.Trace.nodes = I.n inst; objects = I.objects inst }
                  in
                  let written =
                    Dmn_core.Serial.Trace.write_items path header
                      (Seq.map
                         (function
                           | Stream.Req { Stream.node; x; kind } ->
                               Dmn_core.Serial.Trace.Req
                                 { Dmn_core.Serial.Trace.node; x; write = kind = Stream.Write }
                           | Stream.Topo t -> Dmn_core.Serial.Trace.Topo t)
                         (make_seq ()))
                  in
                  Printf.eprintf "dmnet replay: wrote %d items to %s\n%!" written path;
                  E.run_trace ~config ?ckpt ~tolerate_truncation inst placement path
              | None -> E.run_items ~config ?ckpt inst placement (make_seq ()))
          | _ ->
              Printf.eprintf
                "dmnet replay: pass exactly one of --trace FILE or --scenario NAME\n";
              exit 2)
    in
    let t = result.E.totals in
    Printf.eprintf
      "dmnet replay: policy %s, %d events in %d epochs: serving %.3f + storage %.3f + \
       migration %.3f = %.3f (%d copies)\n\
       %!"
      (E.policy_name result.E.policy) t.E.events (List.length result.E.epochs) t.E.serving
      t.E.storage t.E.migration (E.total_cost t) t.E.final_copies;
    if t.E.topo > 0 || t.E.dropped > 0 || t.E.emergency > 0 then
      Printf.eprintf
        "dmnet replay: churn: %d topology events applied, %d requests dropped, %d emergency \
         re-replications\n\
         %!"
        t.E.topo t.E.dropped t.E.emergency;
    let ops name =
      match List.assoc_opt name result.E.ops with Some (Metrics.Counter n) -> n | _ -> 0
    in
    Printf.eprintf
      "dmnet replay: supervision: %d solve retries, %d fallbacks, %d serve retries; %d \
       checkpoints written, %d resumes\n\
       %!"
      t.E.solve_retries t.E.solve_fallbacks (ops "serve_retries") (ops "checkpoints_written")
      (ops "resumes");
    match metrics_out with
    | Some path -> E.write_metrics path inst result
    | None -> print_string (E.metrics_json inst result ^ "\n")
  in
  let term =
    Term.(
      const run $ instance_arg $ trace $ scenario $ events $ phases $ write_fraction $ epoch
      $ policy $ period $ algo $ metrics_out $ trace_out $ ckpt_path $ ckpt_every $ ckpt_keep
      $ resume $ retries $ tolerate_truncation $ dirty_eps $ solve_cache $ seed_arg
      $ domains_arg)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Stream a request trace through the sharded replay engine: serve each epoch over the \
          domain pool, optionally re-optimize the placement at epoch boundaries, and emit a \
          per-epoch metrics timeline as JSON. Deterministic: the metrics JSON is byte-identical \
          for every --domains value, and across kill-and-resume ($(b,--ckpt)/$(b,--resume)). \
          Pool tasks run under a supervisor with bounded retries; failed re-solves degrade to \
          the previous placement."
       ~exits)
    term

(* ---------- serve ---------- *)

module Srv = Dmn_server.Server

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv): every connection can send data \
                 lines (dmnet-trace v1 grammar) and control lines ($(b,metrics), $(b,health), \
                 $(b,stats), $(b,sync), $(b,shutdown)); control replies come back on the same \
                 connection. A stale socket file is replaced; anything else at $(docv) is \
                 refused.")
  in
  let use_stdin =
    Arg.(value & flag & info [ "stdin" ]
           ~doc:"Also read data lines from stdin (control replies go to stdout). With \
                 $(b,--stdin) alone the daemon drains and exits at end of input, so \
                 $(b,cat trace | dmnet serve --stdin ...) reproduces $(b,dmnet replay).")
  in
  let policy =
    Arg.(value
         & opt (Arg.enum [ ("static", E.Static); ("resolve", E.Resolve); ("cache", E.Cache) ])
             E.Resolve
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"static (never replan), resolve (re-solve every epoch), or cache \
                   (per-event threshold caching).")
  in
  let epoch =
    Arg.(value & opt int 1000 & info [ "epoch" ] ~docv:"M"
           ~doc:"Requests per epoch: the daemon batches M accepted requests (topology events \
                 ride along in arrival order), then serves the batch sharded over the domain \
                 pool — the same batching as $(b,dmnet replay), so metrics stay \
                 byte-identical.")
  in
  let period =
    Arg.(value & opt (some int) None & info [ "period" ] ~docv:"T"
           ~doc:"Storage period: events per full storage-rent charge (default: the instance's \
                 request volume).")
  in
  let algo =
    Arg.(value & opt string "approx-mp" & info [ "algo" ] ~docv:"ALGO"
           ~doc:"Algorithm for the initial placement (see $(b,dmnet solve)).")
  in
  let queue =
    Arg.(value & opt int 16384 & info [ "queue" ] ~docv:"CAP"
           ~doc:"Ingest queue bound: requests arriving while CAP requests are already queued \
                 unserved are shed (counted in $(b,shed_total), never silently dropped). \
                 Topology events are never shed.")
  in
  let tick =
    Arg.(value & opt (some float) None & info [ "tick" ] ~docv:"S"
           ~doc:"Wall-clock flush: serve whatever is queued as a partial epoch when $(docv) \
                 seconds pass without a full batch. Bounds latency under a trickle of \
                 traffic, but partial epochs are no longer byte-identical to a replay of the \
                 same stream — leave unset when determinism matters.")
  in
  let ckpt_path =
    Arg.(value & opt (some string) None & info [ "ckpt" ] ~docv:"DIR"
           ~doc:"Write crash-safe checkpoint generations into the directory $(docv) \
                 (dmnet-ckptdir v1, newest $(b,--ckpt-keep) retained) every \
                 $(b,--ckpt-every) epochs and at shutdown; restart with \
                 $(b,--resume) $(docv). Journal segments a checkpoint covers are pruned, \
                 bounding journal disk usage.")
  in
  let ckpt_every =
    Arg.(value & opt int 1 & info [ "ckpt-every" ] ~docv:"N"
           ~doc:"Checkpoint after every N-th epoch (with --ckpt; default 1). The journal is \
                 fsynced before each due checkpoint.")
  in
  let ckpt_keep =
    Arg.(value & opt int 3 & info [ "ckpt-keep" ] ~docv:"K"
           ~doc:"Keep the newest K checkpoint generations (with --ckpt; default 3). Resume \
                 falls back to an older generation when a newer one is corrupt, counted in \
                 $(b,ckpt_fallbacks_total).")
  in
  let resume =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"CKPTDIR"
           ~doc:"Resume a killed daemon from the newest valid checkpoint generation in \
                 $(docv). Requires $(b,--journal) with the journal directory the interrupted \
                 daemon appended: the chain's consumed part is fast-forwarded \
                 (fingerprint-verified; pruned segments vouched for by the checkpoint) and \
                 the unserved tail re-queued, so the final metrics are byte-identical to an \
                 uninterrupted run over the same event stream. Policy, epoch size and \
                 storage period are taken from the checkpoint.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Append every accepted event to a segment chain in the directory $(docv) \
                 (dmnet-trace v1 segments, rotated by item count) before it can reach the \
                 engine, fsyncing before each checkpoint and at shutdown. Segments fully \
                 covered by a durable checkpoint are pruned. Required for $(b,--resume); a \
                 resumed run repairs a torn final line and continues the chain.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the final engine metrics JSON to $(docv) (atomic write) on shutdown.")
  in
  let retries =
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"K"
           ~doc:"Retry a failed pool task up to K times before giving up (as in \
                 $(b,dmnet replay)).")
  in
  let max_events =
    Arg.(value & opt (some int) None & info [ "max-events" ] ~docv:"R"
           ~doc:"Stop (gracefully) once R requests have been served.")
  in
  let duration =
    Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"S"
           ~doc:"Stop (gracefully) after $(docv) seconds of wall-clock time.")
  in
  let dirty_eps =
    Arg.(value & opt float 0.3 & info [ "dirty-eps" ] ~docv:"EPS"
           ~doc:"Incremental re-solve threshold, as in $(b,dmnet replay): only objects whose \
                 normalized frequency drift exceeds $(docv) are re-solved at an epoch \
                 boundary; 0 re-solves everything. On $(b,--resume) the value is taken from \
                 the checkpoint.")
  in
  let solve_cache =
    Arg.(value & opt int 0 & info [ "solve-cache" ] ~docv:"CAP"
           ~doc:"Bounded LRU memo for per-object solves, as in $(b,dmnet replay). 0 \
                 (default) disables. Not combinable with --ckpt/--resume.")
  in
  let pipeline =
    Arg.(value & flag & info [ "pipeline" ]
           ~doc:"Overlap each epoch's dirty-set re-solve with journaling and batching of the \
                 next epoch on a spare domain. Placements are applied at a deterministic \
                 barrier before the next epoch is served, so metrics, checkpoints, and \
                 resume stay byte-identical to an unpipelined daemon.")
  in
  let run file socket use_stdin policy epoch period algo queue tick ckpt_path ckpt_every
      ckpt_keep resume journal metrics_out retries max_events duration dirty_eps solve_cache
      pipeline domains =
    protect @@ fun () ->
    set_domains domains;
    if retries < 0 then begin
      Printf.eprintf "dmnet serve: --retries must be >= 0\n";
      exit 2
    end;
    if ckpt_every < 1 then begin
      Printf.eprintf "dmnet serve: --ckpt-every must be >= 1\n";
      exit 2
    end;
    if ckpt_keep < 1 then begin
      Printf.eprintf "dmnet serve: --ckpt-keep must be >= 1\n";
      exit 2
    end;
    if queue < 1 then begin
      Printf.eprintf "dmnet serve: --queue must be >= 1\n";
      exit 2
    end;
    (match tick with
    | Some t when t <= 0.0 ->
        Printf.eprintf "dmnet serve: --tick must be positive\n";
        exit 2
    | _ -> ());
    if dirty_eps < 0.0 || Float.is_nan dirty_eps then begin
      Printf.eprintf "dmnet serve: --dirty-eps must be >= 0\n";
      exit 2
    end;
    if solve_cache < 0 then begin
      Printf.eprintf "dmnet serve: --solve-cache must be >= 0\n";
      exit 2
    end;
    let inst = load_instance file in
    let config =
      {
        E.default_config with
        E.policy;
        epoch;
        storage_period = period;
        attempts = retries + 1;
        dirty_eps;
        solve_cache;
      }
    in
    let ckpt = Option.map (fun dir -> { E.dir; every = ckpt_every; keep = ckpt_keep }) ckpt_path in
    let config, placement =
      match resume with
      | None -> (config, solve_placement inst algo)
      | Some cpath ->
          if journal = None then begin
            Printf.eprintf
              "dmnet serve: --resume requires --journal DIR (the journal directory the \
               interrupted daemon appended)\n";
            exit 2
          end;
          let c = load_ckptdir ~who:"serve" cpath in
          let policy =
            match E.policy_of_string c.Dmn_core.Serial.Checkpoint.policy with
            | Some p -> p
            | None ->
                Err.failf ~file:cpath Err.Validation "unknown checkpoint policy %s"
                  c.Dmn_core.Serial.Checkpoint.policy
          in
          (* as in replay --resume: the checkpoint is authoritative for
             the run geometry; the placement below only carries the
             shape contract (the engine restores the real copy sets) *)
          let config =
            {
              config with
              E.policy;
              epoch = c.Dmn_core.Serial.Checkpoint.epoch_size;
              storage_period = Some c.Dmn_core.Serial.Checkpoint.period;
              dirty_eps = c.Dmn_core.Serial.Checkpoint.dirty_eps;
            }
          in
          let placement =
            try Dmn_core.Placement.make (Array.copy c.Dmn_core.Serial.Checkpoint.placements)
            with Invalid_argument msg -> Err.fail ~file:cpath Err.Validation msg
          in
          (config, placement)
    in
    let scfg =
      {
        Srv.engine = config;
        ckpt;
        resume;
        journal;
        queue_cap = queue;
        tick_s = tick;
        metrics_out;
        max_events;
        max_seconds = duration;
        pipeline;
      }
    in
    let s = Srv.run_daemon scfg inst placement ~socket ~use_stdin in
    Printf.eprintf
      "dmnet serve: %d events served in %d epochs (%.1fs): accepted %d, shed %d, malformed \
       %d, unserved %d, peak RSS %d kB\n\
       %!"
      s.Srv.served_events s.Srv.epochs_served s.Srv.elapsed_s s.Srv.accepted_events
      s.Srv.shed_events s.Srv.malformed_lines s.Srv.queued_unserved s.Srv.peak_rss_kb
  in
  let term =
    Term.(
      const run $ instance_arg $ socket $ use_stdin $ policy $ epoch $ period $ algo $ queue
      $ tick $ ckpt_path $ ckpt_every $ ckpt_keep $ resume $ journal $ metrics_out $ retries
      $ max_events $ duration $ dirty_eps $ solve_cache $ pipeline $ domains_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a long-lived serving daemon over the replay engine: accept request and topology \
          events as dmnet-trace v1 lines over a Unix-domain socket and/or stdin, journal them, \
          batch them into epochs and serve each epoch sharded over the domain pool, \
          re-optimizing at epoch boundaries exactly as $(b,dmnet replay) does. Live metrics, \
          health and stats are one control line away; SIGTERM/SIGINT trigger a graceful \
          shutdown (final checkpoint, journal fsync, final metrics). Overload sheds requests \
          past the queue bound — counted, never silent. Fed the same event stream with the \
          same --epoch, the daemon's metrics are byte-identical to the offline replay, \
          including across kill-and-resume."
       ~exits)
    term

(* ---------- ctl ---------- *)

let ctl_cmd =
  let socket =
    Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Control socket of a running $(b,dmnet serve).")
  in
  let command =
    Arg.(required
         & pos 0 (some (Arg.enum
                          [ ("metrics", "metrics"); ("health", "health"); ("stats", "stats");
                            ("sync", "sync"); ("shutdown", "shutdown") ]))
             None
         & info [] ~docv:"CMD"
             ~doc:"Control command: $(b,metrics) (full JSON metrics dump), $(b,health) \
                   (one-line summary), $(b,stats) (cheap JSON counters), $(b,sync) (force a \
                   journal fsync; replies $(b,ok offset=N) with the durable journal offset), \
                   $(b,shutdown) (graceful stop).")
  in
  let run socket command =
    protect @@ fun () ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (try Unix.connect fd (Unix.ADDR_UNIX socket)
         with Unix.Unix_error (err, _, _) ->
           Err.failf ~file:socket Err.Io "connect: %s" (Unix.error_message err));
        let b = Bytes.of_string (command ^ "\n") in
        let rec send off =
          if off < Bytes.length b then
            match Unix.write fd b off (Bytes.length b - off) with
            | 0 -> Err.failf ~file:socket Err.Io "connection closed while sending"
            | w -> send (off + w)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
        in
        send 0;
        (* the daemon answers with exactly one line *)
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 65536 in
        let rec recv () =
          if not (String.contains (Buffer.contents buf) '\n') then
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | r ->
                Buffer.add_subbytes buf chunk 0 r;
                recv ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
        in
        recv ();
        let s = Buffer.contents buf in
        let line =
          match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s
        in
        if line = "" then Err.failf ~file:socket Err.Io "no reply from the daemon";
        print_endline line)
  in
  Cmd.v
    (Cmd.info "ctl"
       ~doc:
         "Send one control command to a running $(b,dmnet serve) daemon over its Unix-domain \
          socket and print the one-line reply."
       ~exits)
    Term.(const run $ socket $ command)

(* ---------- fsck ---------- *)

let fsck_cmd =
  let ckpt_dir =
    Arg.(value & opt (some string) None & info [ "ckpt" ] ~docv:"DIR"
           ~doc:"Checkpoint generation directory (dmnet-ckptdir v1) to validate: manifest \
                 magic and CRC, every referenced generation's own CRC sections, unreferenced \
                 generation files.")
  in
  let journal_dir =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Journal segment directory to validate: per-segment grammar, chain \
                 contiguity (no gap or overlap between segments), header agreement, torn \
                 final line.")
  in
  let repair =
    Arg.(value & flag & info [ "repair" ]
           ~doc:"Repair what can be repaired: truncate a torn journal tail, rewrite the \
                 checkpoint manifest over the valid generations, delete corrupt or \
                 unreferenced generation files, and (with both directories) prune journal \
                 segments the newest valid checkpoint fully covers.")
  in
  let run ckpt_dir journal_dir repair =
    protect @@ fun () ->
    if ckpt_dir = None && journal_dir = None then begin
      Printf.eprintf "dmnet fsck: pass --ckpt DIR and/or --journal DIR\n";
      exit 2
    end;
    let module J = Dmn_core.Serial.Trace.Journal in
    let module Ck = Dmn_core.Serial.Checkpoint in
    (* coverage (items consumed) of the newest valid generation, for
       the cross-check against the journal chain *)
    let coverage = ref None in
    (match ckpt_dir with
    | None -> ()
    | Some dir ->
        let r = Err.get_ok (Cs.fsck_res ~repair dir) in
        Printf.printf "ckpt %s: %d generation(s), latest gen %d%s%s%s%s\n" dir r.Cs.f_generations
          r.Cs.f_latest
          (if r.Cs.f_corrupt > 0 then Printf.sprintf ", %d corrupt" r.Cs.f_corrupt else "")
          (if r.Cs.f_unreferenced > 0 then
             Printf.sprintf ", %d unreferenced" r.Cs.f_unreferenced
           else "")
          (if not r.Cs.f_manifest_ok then ", manifest missing/corrupt" else "")
          (if r.Cs.f_repaired then " (repaired)" else "");
        let l = Err.get_ok (Cs.load_res dir) in
        coverage := Some (l.Cs.ckpt.Ck.events_consumed + l.Cs.ckpt.Ck.topo_consumed);
        (* a corrupt generation or manifest is an integrity failure;
           stray unreferenced files are a benign crash artifact *)
        if (not r.Cs.f_repaired) && (r.Cs.f_corrupt > 0 || not r.Cs.f_manifest_ok) then
          Err.failf ~file:dir Err.Validation
            "checkpoint directory is damaged (%d corrupt generation(s)%s); re-run with --repair"
            r.Cs.f_corrupt
            (if r.Cs.f_manifest_ok then "" else ", manifest missing/corrupt"));
    match journal_dir with
    | None -> ()
    | Some dir ->
        let r = Err.get_ok (J.fsck_res ~repair dir) in
        Printf.printf "journal %s: %d segment(s), %d item(s), %d bytes%s%s\n" dir r.J.f_segments
          r.J.f_items r.J.f_bytes
          (if r.J.f_torn_tail then ", torn tail" else "")
          (if r.J.f_repaired then " (repaired)" else "");
        (match !coverage with
        | None -> ()
        | Some covered ->
            let segs = Err.get_ok (J.list_segments_res dir) in
            let base = match segs with (b, _) :: _ -> b | [] -> 0 in
            let total = base + r.J.f_items in
            if base > covered then
              Err.failf ~file:dir Err.Validation
                "journal chain begins at item %d but the checkpoint only covers %d — segments \
                 were pruned past the checkpoint"
                base covered;
            if covered > total then
              Err.failf ~file:dir Err.Validation
                "checkpoint covers %d items but the journal chain only reaches %d — the \
                 journal lost durable events"
                covered total;
            if repair then begin
              (* prune segments the checkpoint fully covers (never the
                 last): what the daemon does online, offline *)
              let rec prune = function
                | (_, p1) :: ((s2, _) :: _ as rest) when s2 <= covered ->
                    (try Sys.remove p1 with Sys_error _ -> ());
                    Printf.printf "pruned %s\n" (Filename.basename p1);
                    prune rest
                | _ -> ()
              in
              prune segs
            end)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Validate (and optionally repair) the on-disk durability state of a stopped daemon \
          or replay: the checkpoint generation directory, the journal segment chain, and \
          their mutual consistency. Exit 0 when the state is healthy or fully repaired \
          (benign crash artifacts — a torn journal tail, an unreferenced generation file — \
          are reported but do not fail the check); exit 65 on integrity damage without \
          $(b,--repair)."
       ~exits)
    Term.(const run $ ckpt_dir $ journal_dir $ repair)

(* ---------- radii ---------- *)

let radii_cmd =
  let obj = Arg.(value & opt int 0 & info [ "x" ] ~docv:"X" ~doc:"Object index.") in
  let run file x =
    protect @@ fun () ->
    let inst = load_instance file in
    if x < 0 || x >= I.objects inst then
      Err.failf ~file Err.Validation "object index %d out of range [0, %d)" x (I.objects inst);
    let r = Dmn_core.Radii.compute inst ~x in
    let tbl = Tbl.create [ "node"; "cs"; "requests"; "rw"; "rs"; "zs" ] in
    Array.iteri
      (fun v nr ->
        Tbl.add_row tbl
          [
            string_of_int v;
            Tbl.fl (I.cs inst v);
            string_of_int (I.requests inst ~x v);
            Tbl.fl nr.Dmn_core.Radii.rw;
            Tbl.fl nr.Dmn_core.Radii.rs;
            string_of_int nr.Dmn_core.Radii.zs;
          ])
      r;
    Tbl.print tbl
  in
  Cmd.v
    (Cmd.info "radii" ~doc:"Print the paper's write and storage radii per node." ~exits)
    Term.(const run $ instance_arg $ obj)

let () =
  let doc = "approximation algorithms for data management in networks (SPAA 2001)" in
  let info = Cmd.info "dmnet" ~version:"1.0.0" ~doc ~exits in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            gen_cmd; solve_cmd; eval_cmd; compare_cmd; radii_cmd; loadprofile_cmd; replay_cmd;
            serve_cmd; ctl_cmd; fsck_cmd;
          ]))
